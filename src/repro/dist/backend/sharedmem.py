"""Shared-memory multiprocess backend for the flat engine's kernels.

One simulated machine, many host cores: a persistent pool of worker
processes executes each element-scale kernel on a *shard* of the input —
a contiguous range of CSR segments, queries, ranges or elements — and the
shard results are merged deterministically, so every output is
byte-identical to :class:`~repro.dist.backend.numpy_backend.NumpyBackend`.

**No array copies between processes.**  All bulk data moves through one
growable file-backed ``mmap`` arena (``/dev/shm`` when available, so pages
live in RAM).  Per call the main process bump-allocates input and output
regions in the arena, memcpys the inputs in once, and sends the workers
only *pickled slice descriptors* — ``(offset, dtype, shape)`` triples plus
shard bounds, a few hundred bytes — over ``multiprocessing`` pipes.
Workers map the same file and read/write the regions in place.  A plain
file mapping sidesteps ``multiprocessing.shared_memory``'s
resource-tracker unlink races on Python <= 3.12 and keeps fork *and* spawn
start methods trivially correct (workers re-map by path and grow lazily
when a call's arena is larger than their current view).

**Partitioning rules** (the merge argument per kernel):

* ``segmented_sort_values`` / ``blockwise_searchsorted`` — shard by
  *segment ranges* (balanced by element/query count); segments are
  independent, so shard outputs are disjoint slices of the result and any
  per-shard strategy choice is invisible in the output values.
* ``segmented_searchsorted`` / ``gather`` / ``take_ranges`` — shard by
  *query/index/range ranges*; each output position depends only on its own
  query, so results are positionally exact.
* ``ragged_bincount`` / ``bincount`` — shard elements; each worker writes
  a private partial histogram and the main process sums them.  Counts are
  integers, so the sum is exact and order-independent (float weights fall
  back inline).
* ``stable_key_argsort`` (and the two-key form built on it) — two-round
  parallel counting sort: workers histogram their shard, the main process
  turns the ``(worker, key)`` count matrix into exclusive write starts,
  and workers scatter ``start[w, k] + local_rank`` — which reproduces
  exactly the unique stable permutation.

**Small-call cutoff.**  A pool round-trip costs ~0.1–0.5 ms; calls below
``min_parallel_elements`` (and kernels whose shapes make sharding
unprofitable, e.g. histograms with more bins than elements) run inline on
the numpy reference.  The flat engine's per-level control-plane math stays
inline this way; only the element-scale passes fan out.

The pool is lazy (no processes until the first sharded call) and
fork-aware: a process that inherits a backend across ``fork`` (campaign
workers) abandons the parent's pipes and builds its own pool on first use.

**Supervision.**  The processes live inside a
:class:`~repro.dist.backend.supervisor.SupervisedPool`: worker death or a
missed per-call deadline triggers respawn against the same arena file and
a bounded re-dispatch of the failed shard (kernels are pure, so the retry
is byte-identical).  If the pool keeps failing, the backend *degrades* —
it closes the pool and runs every further kernel inline on the numpy
reference, which is slower but still byte-identical; the demotion is
visible in :meth:`SharedMemBackend.stats` and
:meth:`SharedMemBackend.effective_name`.
"""

from __future__ import annotations

import atexit
import mmap
import os
import tempfile
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.chaos import get_chaos
from repro.dist import flatops
from repro.dist.backend.base import KernelBackend
from repro.dist.backend.numpy_backend import NumpyBackend
from repro.dist.backend.supervisor import (
    RECOVERY_COUNTERS,
    PoolFailureError,
    SupervisedPool,
)

_ALIGN = 64


def _aligned(nbytes: int) -> int:
    return (int(nbytes) + _ALIGN - 1) & ~(_ALIGN - 1)


class _Arena:
    """Growable file-backed shared scratch with a per-call bump allocator."""

    def __init__(self, capacity: int):
        shm_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
        fd, path = tempfile.mkstemp(prefix="repro-arena-", dir=shm_dir)
        self.fd = fd
        self.path = path
        self.size = 0
        self.mm: Optional[mmap.mmap] = None
        # Mappings are never closed while the backend lives: views from a
        # finished call may still be referenced, and file mappings of the
        # same pages stay coherent, so retiring old maps is safe and
        # closing them is not.
        self._retired: List[mmap.mmap] = []
        self._top = 0
        self._grow(capacity)

    def _grow(self, need: int) -> None:
        new = max(self.size, 1 << 22)
        while new < need:
            new *= 2
        if new == self.size:
            return
        os.ftruncate(self.fd, new)
        if self.mm is not None:
            self._retired.append(self.mm)
        self.mm = mmap.mmap(self.fd, new)
        self.size = new

    def begin(self, nbytes: int) -> None:
        """Start a call: reset the bump pointer, ensure capacity."""
        self._top = 0
        if nbytes > self.size:
            self._grow(nbytes)

    def _reserve(self, nbytes: int) -> int:
        off = self._top
        self._top = _aligned(off + int(nbytes))
        if self._top > self.size:  # begin() under-counted: a bug, fail loudly
            raise MemoryError("arena overflow: call did not pre-size its regions")
        return off

    def put(self, arr: np.ndarray) -> Tuple[int, str, Tuple[int, ...]]:
        """Copy an array into the arena; returns its descriptor."""
        arr = np.ascontiguousarray(arr)
        off = self._reserve(arr.nbytes)
        view = np.frombuffer(self.mm, dtype=arr.dtype, count=arr.size, offset=off)
        view[...] = arr.reshape(-1)
        return (off, arr.dtype.str, arr.shape)

    def alloc(self, shape, dtype) -> Tuple[np.ndarray, Tuple[int, str, Tuple[int, ...]]]:
        """Reserve an output region; returns ``(view, descriptor)``."""
        dt = np.dtype(dtype)
        shape = tuple(int(s) for s in (shape if isinstance(shape, tuple) else (shape,)))
        count = 1
        for s in shape:
            count *= s
        off = self._reserve(count * dt.itemsize)
        view = np.frombuffer(self.mm, dtype=dt, count=count, offset=off).reshape(shape)
        return view, (off, dt.str, shape)

    def close(self) -> None:
        for m in [self.mm, *self._retired]:
            if m is None:
                continue
            try:
                m.close()
            except BufferError:  # a caller still holds a view; the unlink below
                pass             # frees the pages once they drop it
        self.mm = None
        self._retired = []
        try:
            os.close(self.fd)
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _view(mm: mmap.mmap, desc) -> np.ndarray:
    off, dtype, shape = desc
    dt = np.dtype(dtype)
    count = 1
    for s in shape:
        count *= int(s)
    return np.frombuffer(mm, dtype=dt, count=count, offset=off).reshape(shape)


def _w_segmented_sort(mm, p) -> None:
    vals = _view(mm, p["values"])
    off = _view(mm, p["offsets"])
    out = _view(mm, p["out"])
    s0, s1 = p["s0"], p["s1"]
    lo, hi = int(off[s0]), int(off[s1])
    sub_off = off[s0:s1 + 1] - lo
    out[lo:hi] = flatops.segmented_sort_values_numpy(vals[lo:hi], sub_off)


def _w_segmented_searchsorted(mm, p) -> None:
    vals = _view(mm, p["values"])
    off = _view(mm, p["offsets"])
    out = _view(mm, p["out"])
    q0, q1 = p["q0"], p["q1"]
    side = p["side"]
    if side is None:
        side = _view(mm, p["side_arr"])[q0:q1]
    lo = p["lo"]
    hi = p["hi"]
    out[q0:q1] = flatops.segmented_searchsorted_numpy(
        vals, off,
        _view(mm, p["queries"])[q0:q1],
        _view(mm, p["query_seg"])[q0:q1],
        side=side,
        lo=None if lo is None else _view(mm, lo)[q0:q1],
        hi=None if hi is None else _view(mm, hi)[q0:q1],
    )


def _w_blockwise_searchsorted(mm, p) -> None:
    vals = _view(mm, p["values"])
    off = _view(mm, p["offsets"])
    qoff = _view(mm, p["query_offsets"])
    out = _view(mm, p["out"])
    s0, s1 = p["s0"], p["s1"]
    vlo = int(off[s0])
    qlo, qhi = int(qoff[s0]), int(qoff[s1])
    out[qlo:qhi] = flatops.blockwise_searchsorted_numpy(
        vals[vlo:int(off[s1])],
        off[s0:s1 + 1] - vlo,
        _view(mm, p["queries"])[qlo:qhi],
        qoff[s0:s1 + 1] - qlo,
        side=p["side"],
    )


def _w_bincount(mm, p) -> None:
    key = _view(mm, p["key"])[p["e0"]:p["e1"]]
    row = _view(mm, p["counts"])[p["row"]]
    row[...] = np.bincount(key, minlength=row.size)


def _w_ragged_bincount(mm, p) -> None:
    e0, e1 = p["e0"], p["e1"]
    seg = _view(mm, p["seg"])[e0:e1]
    key = _view(mm, p["key"])[e0:e1]
    key_offsets = _view(mm, p["key_offsets"])
    row = _view(mm, p["counts"])[p["row"]]
    row[...] = np.bincount(key_offsets[seg] + key, minlength=row.size)


def _w_rank_scatter(mm, p) -> None:
    e0, e1 = p["e0"], p["e1"]
    key = _view(mm, p["key"])[e0:e1]
    counts = _view(mm, p["counts"])[p["row"]]
    starts = _view(mm, p["starts"])[p["row"]]
    out = _view(mm, p["out"])
    order = flatops.stable_key_argsort_numpy(key, p["key_bound"])
    k_sorted = key[order]
    excl = np.cumsum(counts) - counts
    dest = starts[k_sorted] + (
        flatops.cached_arange(order.size) - excl[k_sorted]
    )
    out[dest] = order + e0


def _w_gather(mm, p) -> None:
    vals = _view(mm, p["values"])
    idx = _view(mm, p["indices"])[p["e0"]:p["e1"]]
    out = _view(mm, p["out"])
    out[p["e0"]:p["e1"]] = vals[idx]


def _w_take_ranges(mm, p) -> None:
    vals = _view(mm, p["values"])
    r0, r1 = p["r0"], p["r1"]
    starts = _view(mm, p["starts"])[r0:r1]
    lengths = _view(mm, p["lengths"])[r0:r1]
    out = _view(mm, p["out"])
    o0 = p["o0"]
    idx = flatops.concat_ranges(starts, lengths)
    out[o0:o0 + idx.size] = vals[idx]


def _w_debug_sleep(mm, p) -> None:
    # Test-only kernel: a worker that blocks for ``seconds`` without
    # touching the arena, so the supervisor's deadline/respawn path can be
    # exercised deterministically (no real kernel is this slow).
    # ``ignore_sigterm`` additionally makes the worker a *wedged* process
    # that shrugs off ``terminate()`` — the shutdown-escalation scenario.
    if p.get("ignore_sigterm"):
        import signal

        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(p["seconds"])


def _w_release_workspace(mm, p) -> None:
    # Each worker owns a private Python-level workspace arena (the fork
    # hook in repro.dist.workspace resets it at spawn); this drops its
    # pooled buffers so a released parent does not leave q workers pinning
    # their shard-sized high water.
    from repro.dist.workspace import get_arena

    get_arena().release()


_WORKER_KERNELS = {
    "debug_sleep": _w_debug_sleep,
    "release_workspace": _w_release_workspace,
    "segmented_sort": _w_segmented_sort,
    "segmented_searchsorted": _w_segmented_searchsorted,
    "blockwise_searchsorted": _w_blockwise_searchsorted,
    "bincount": _w_bincount,
    "ragged_bincount": _w_ragged_bincount,
    "rank_scatter": _w_rank_scatter,
    "gather": _w_gather,
    "take_ranges": _w_take_ranges,
}


def _worker_main(conn, arena_path: str) -> None:
    """Worker loop: map the arena, execute shard tasks until told to quit."""
    # Kernels running *inside* a worker must never dispatch back through
    # the backend layer (a nested pool would deadlock): pin this process's
    # dispatch to the in-process reference.
    flatops._BACKEND = NumpyBackend()
    f = open(arena_path, "r+b")
    mm: Optional[mmap.mmap] = None
    mapped = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            name, arena_size, payload = msg
            try:
                if arena_size > mapped:
                    mm = mmap.mmap(f.fileno(), arena_size)
                    mapped = arena_size
                _WORKER_KERNELS[name](mm, payload)
                conn.send(("ok", None))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
    finally:
        f.close()
        conn.close()


# ----------------------------------------------------------------------
# Shard geometry
# ----------------------------------------------------------------------
def _range_cuts(n: int, k: int) -> List[int]:
    """``k`` near-equal contiguous ranges of ``0..n`` (ends, k+1 entries)."""
    return [n * i // k for i in range(k + 1)]


def _weighted_cuts(prefix: np.ndarray, k: int) -> np.ndarray:
    """Cut ``len(prefix) - 1`` items into ``k`` runs balanced by weight.

    ``prefix`` is the items' inclusive weight prefix with a leading zero
    (e.g. a CSR offsets vector).  Returns ``k + 1`` monotone item indices.
    """
    m = int(prefix.size) - 1
    total = int(prefix[-1])
    targets = np.array([total * i // k for i in range(k + 1)], dtype=np.int64)
    cuts = np.searchsorted(prefix, targets, side="left").astype(np.int64)
    cuts[0] = 0
    cuts[-1] = m
    np.maximum.accumulate(cuts, out=cuts)
    return np.minimum(cuts, m)


class SharedMemBackend(KernelBackend):
    """Persistent worker pool sharding kernels over shared memory.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the CPU affinity count (capped at
        8 — the kernels are memory-bound and stop scaling well past that).
    min_parallel_elements:
        Calls moving fewer elements than this run inline on the numpy
        reference (the pool round-trip would dominate).  The equivalence
        tests set it to 0 to force sharding on tiny inputs; the
        ``REPRO_SHM_CUTOFF`` environment variable overrides the default
        (so env-selected backends can be forced to shard small campaigns).
    arena_bytes:
        Initial arena capacity (grows geometrically on demand).
    call_timeout_s:
        Optional wall-clock deadline per dispatch round; a worker that
        misses it is killed, respawned and its shard retried.  ``None``
        (the default, overridable via ``REPRO_SHM_TIMEOUT``) waits for
        worker death only — kernels have no unbounded loops, so a healthy
        worker always answers.
    max_shard_retries:
        Re-dispatch budget per kernel call before the pool gives up and
        the call falls back inline.
    degrade_after:
        Consecutive pool failures after which the backend demotes itself
        to inline execution for the rest of its life (until ``close()``).
    """

    name = "sharedmem"

    def __init__(
        self,
        workers: Optional[int] = None,
        min_parallel_elements: Optional[int] = None,
        arena_bytes: int = 1 << 26,
        call_timeout_s: Optional[float] = None,
        max_shard_retries: int = 2,
        degrade_after: int = 3,
    ):
        if workers is None:
            try:
                workers = len(os.sched_getaffinity(0))
            except (AttributeError, OSError):
                workers = os.cpu_count() or 1
            workers = min(workers, 8)
        self.workers = max(1, int(workers))
        if min_parallel_elements is None:
            env_cutoff = os.environ.get("REPRO_SHM_CUTOFF", "").strip()
            if env_cutoff:
                try:
                    min_parallel_elements = int(env_cutoff)
                except ValueError:
                    raise ValueError(
                        f"bad REPRO_SHM_CUTOFF {env_cutoff!r}: must be an integer"
                    ) from None
            else:
                min_parallel_elements = 1 << 16
        self.min_parallel_elements = int(min_parallel_elements)
        if call_timeout_s is None:
            env_timeout = os.environ.get("REPRO_SHM_TIMEOUT", "").strip()
            if env_timeout:
                try:
                    call_timeout_s = float(env_timeout)
                except ValueError:
                    raise ValueError(
                        f"bad REPRO_SHM_TIMEOUT {env_timeout!r}: must be a number "
                        "of seconds"
                    ) from None
        self.call_timeout_s = call_timeout_s
        self.max_shard_retries = int(max_shard_retries)
        self.degrade_after = int(degrade_after)
        self._arena_bytes = int(arena_bytes)
        self._numpy = NumpyBackend()
        self._arena: Optional[_Arena] = None
        self._pool: Optional[SupervisedPool] = None
        self._pid: Optional[int] = None
        self._stats: Dict[str, Dict[str, int]] = {}
        self._degraded: Optional[str] = None
        self._consecutive_failures = 0
        self._inline_fallbacks = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        return self.workers > 1

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            if self._pid == os.getpid():
                return
            # Inherited across fork: the pipes belong to the parent.
            # Abandon (never close) them and build a fresh pool here.
            self._pool = None
            self._arena = None
        self._arena = _Arena(self._arena_bytes)
        self._pool = SupervisedPool(
            workers=self.workers,
            arena_path=self._arena.path,
            worker_target=_worker_main,
            call_timeout=self.call_timeout_s,
            max_shard_retries=self.max_shard_retries,
            chaos=get_chaos(),
        )
        self._pid = os.getpid()
        atexit.register(self.close)

    def close(self) -> None:
        """Stop the workers and unlink the arena (pool restarts lazily).

        Shutdown escalates quit → join → ``terminate()`` → ``kill()`` in
        the supervisor, and the arena unlink is guaranteed even if worker
        teardown misbehaves — a wedged worker must not leak the /dev/shm
        file.  Degradation is also cleared: a re-opened pool starts fresh.
        """
        if self._pool is not None and self._pid == os.getpid():
            try:
                self._merge_pool_counters(self._pool)
                self._pool.close()
            finally:
                if self._arena is not None:
                    self._arena.close()
        elif self._arena is not None and self._pid == os.getpid():
            self._arena.close()
        self._pool = None
        self._arena = None
        self._degraded = None
        self._consecutive_failures = 0

    def _run(self, tasks: List[Tuple[int, str, dict]]) -> None:
        """Execute one round of shard tasks, one per distinct worker."""
        self._pool.run(tasks, self._arena.size)

    # ------------------------------------------------------------------
    # Supervision / degradation
    # ------------------------------------------------------------------
    def _supervised(
        self, kernel: str, attempt: Callable[[], np.ndarray],
        inline: Callable[[], np.ndarray],
    ) -> np.ndarray:
        """Run the sharded attempt with inline fallback and degradation.

        A :class:`PoolFailureError` (retry budget exhausted) or a spawn
        failure falls back to the inline reference — byte-identical by the
        backend contract — and counts toward degradation; after
        ``degrade_after`` consecutive pool failures the pool is closed for
        good and every further call goes straight inline.  Deterministic
        in-kernel exceptions (``WorkerKernelError``) propagate unchanged:
        they would reproduce on retry and must keep raising exactly like
        the inline reference's validation does.
        """
        if self._degraded is None:
            try:
                result = attempt()
            except (PoolFailureError, OSError) as exc:
                self._note_pool_failure(kernel, exc)
            else:
                self._consecutive_failures = 0
                self._count(kernel, True)
                return result
        self._inline_fallbacks += 1
        self._count(kernel, False)
        return inline()

    def _note_pool_failure(self, kernel: str, exc: BaseException) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures < self.degrade_after:
            return
        self._degraded = (
            f"{self._consecutive_failures} consecutive pool failures "
            f"(last: {kernel}: {exc})"
        )
        # Reap whatever is left of the pool but keep the degradation mark
        # (close() is what clears it): swap the state out first so close()
        # cannot recurse or reset the demotion.
        pool, arena = self._pool, self._arena
        self._pool = None
        self._arena = None
        if pool is not None:
            try:
                self._merge_pool_counters(pool)
                pool.close()
            finally:
                if arena is not None:
                    arena.close()

    @property
    def degraded(self) -> Optional[str]:
        """Why the backend demoted itself to inline execution, or ``None``."""
        return self._degraded

    def effective_name(self) -> str:
        if self._degraded is not None:
            return f"{self.name}:degraded->numpy"
        return self.name

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def _count(self, kernel: str, sharded: bool) -> None:
        entry = self._stats.setdefault(kernel, {"sharded": 0, "inline": 0})
        entry["sharded" if sharded else "inline"] += 1

    def _merge_pool_counters(self, pool: SupervisedPool) -> None:
        # Folded into ``_retired_counters`` so stats() survive pool closes
        # (degradation closes the pool but its recovery history must stay
        # visible).
        acc = getattr(self, "_retired_counters", None)
        if acc is None:
            acc = self._retired_counters = {}
        for key, value in pool.counters.items():
            acc[key] = acc.get(key, 0) + value

    def supervisor_stats(self) -> Dict[str, object]:
        """Recovery counters + degradation state (``stats()['supervisor']``)."""
        # Zero-seed every recovery counter so the stats schema is stable:
        # a healthy run reports 0s, not missing keys.
        counters: Dict[str, int] = {k: 0 for k in RECOVERY_COUNTERS}
        counters.update(getattr(self, "_retired_counters", {}))
        if self._pool is not None and self._pid == os.getpid():
            for key, value in self._pool.counters.items():
                counters[key] = counters.get(key, 0) + value
        chaos = get_chaos()
        if chaos is not None:
            for key, value in chaos.counters.items():
                counters[f"chaos_{key}"] = value
        out: Dict[str, object] = dict(counters)
        out["inline_fallbacks"] = self._inline_fallbacks
        out["degraded"] = self._degraded
        return out

    def stats(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {
            k: dict(v) for k, v in self._stats.items()
        }
        out["supervisor"] = self.supervisor_stats()  # type: ignore[assignment]
        return out

    def release_workspace(self) -> None:
        """Release the parent arena and every live worker's private arena."""
        super().release_workspace()
        if self._pool is None or self._pid != os.getpid():
            return
        try:
            self._run([
                (widx, "release_workspace", {})
                for widx in range(self.workers)
            ])
        except PoolFailureError:
            # Best-effort memory hook: a dying pool has nothing to release.
            pass

    def describe(self) -> str:
        extra = ", degraded" if self._degraded is not None else ""
        return f"sharedmem(workers={self.workers}{extra})"

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def segmented_sort_values(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        values = np.asarray(values)
        offsets = np.asarray(offsets, dtype=np.int64)
        nseg = int(offsets.size) - 1
        if (
            values.size < self.min_parallel_elements
            or self.workers <= 1
            or nseg < 2
            or values.ndim != 1
            or values.dtype.hasobject
        ):
            self._count("segmented_sort_values", False)
            return self._numpy.segmented_sort_values(values, offsets)
        def attempt() -> np.ndarray:
            self._ensure_pool()
            arena = self._arena
            arena.begin(
                _aligned(values.nbytes) + _aligned(offsets.nbytes)
                + _aligned(values.nbytes) + 4 * _ALIGN
            )
            d_vals = arena.put(values)
            d_off = arena.put(offsets)
            out, d_out = arena.alloc(values.size, values.dtype)
            cuts = _weighted_cuts(offsets, self.workers)
            tasks = []
            for w in range(self.workers):
                s0, s1 = int(cuts[w]), int(cuts[w + 1])
                if s1 > s0 and offsets[s1] > offsets[s0]:
                    tasks.append((w, "segmented_sort", {
                        "values": d_vals, "offsets": d_off, "out": d_out,
                        "s0": s0, "s1": s1,
                    }))
            self._run(tasks)
            return out.copy()

        return self._supervised(
            "segmented_sort_values", attempt,
            lambda: self._numpy.segmented_sort_values(values, offsets),
        )

    def segmented_searchsorted(
        self,
        values: np.ndarray,
        offsets: np.ndarray,
        queries: np.ndarray,
        query_seg: np.ndarray,
        side: Union[str, np.ndarray] = "left",
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        values = np.asarray(values)
        queries = np.asarray(queries)
        if (
            queries.size < self.min_parallel_elements
            or self.workers <= 1
            or queries.ndim != 1
            or values.dtype.hasobject
            # Scalar windows broadcast in the reference; shard only the
            # per-query array form.
            or (lo is not None and np.ndim(lo) == 0)
            or (hi is not None and np.ndim(hi) == 0)
        ):
            self._count("segmented_searchsorted", False)
            return self._numpy.segmented_searchsorted(
                values, offsets, queries, query_seg, side=side, lo=lo, hi=hi
            )
        offsets = np.asarray(offsets, dtype=np.int64)
        query_seg = np.asarray(query_seg, dtype=np.int64)
        # The reference's argument validation, verbatim, so sharding never
        # changes which calls raise (workers only ever see valid slices).
        if queries.shape != query_seg.shape:
            raise ValueError("queries and query_seg must be equal-length 1-D arrays")
        if query_seg.size and (
            query_seg.min(initial=0) < 0
            or query_seg.max(initial=0) >= offsets.size - 1
        ):
            raise IndexError("query segment index out of range")
        side_str: Optional[str] = None
        side_arr: Optional[np.ndarray] = None
        if isinstance(side, str):
            if side not in ("left", "right"):
                raise ValueError("side must be 'left', 'right', or a boolean mask")
            side_str = side
        else:
            side_arr = np.asarray(side, dtype=bool)
            if side_arr.shape != queries.shape:
                raise ValueError("per-query side mask must match the query shape")
        base = offsets[query_seg]
        lo_abs = base if lo is None else base + np.asarray(lo, dtype=np.int64)
        hi_abs = (
            offsets[query_seg + 1] if hi is None
            else base + np.asarray(hi, dtype=np.int64)
        )
        if lo_abs.size and (
            np.any(lo_abs < base) or np.any(hi_abs > offsets[query_seg + 1])
            or np.any(lo_abs > hi_abs)
        ):
            raise IndexError("search window out of segment range")

        def attempt() -> np.ndarray:
            self._ensure_pool()
            arena = self._arena
            lo64 = None if lo is None else np.asarray(lo, dtype=np.int64)
            hi64 = None if hi is None else np.asarray(hi, dtype=np.int64)
            need = (
                _aligned(values.nbytes) + _aligned(offsets.nbytes)
                + _aligned(queries.nbytes) + _aligned(query_seg.nbytes)
                + (0 if side_arr is None else _aligned(side_arr.nbytes))
                + (0 if lo64 is None else _aligned(lo64.nbytes))
                + (0 if hi64 is None else _aligned(hi64.nbytes))
                + _aligned(queries.size * 8) + 8 * _ALIGN
            )
            arena.begin(need)
            payload_base = {
                "values": arena.put(values),
                "offsets": arena.put(offsets),
                "queries": arena.put(queries),
                "query_seg": arena.put(query_seg),
                "side": side_str,
                "side_arr": None if side_arr is None else arena.put(side_arr),
                "lo": None if lo64 is None else arena.put(lo64),
                "hi": None if hi64 is None else arena.put(hi64),
            }
            out, d_out = arena.alloc(queries.size, np.int64)
            cuts = _range_cuts(queries.size, self.workers)
            tasks = []
            for w in range(self.workers):
                q0, q1 = cuts[w], cuts[w + 1]
                if q1 > q0:
                    payload = dict(payload_base)
                    payload.update({"out": d_out, "q0": q0, "q1": q1})
                    tasks.append((w, "segmented_searchsorted", payload))
            self._run(tasks)
            return out.copy()

        return self._supervised(
            "segmented_searchsorted", attempt,
            lambda: self._numpy.segmented_searchsorted(
                values, offsets, queries, query_seg, side=side, lo=lo, hi=hi
            ),
        )

    def blockwise_searchsorted(
        self,
        values: np.ndarray,
        offsets: np.ndarray,
        queries: np.ndarray,
        query_offsets: np.ndarray,
        side: str = "left",
    ) -> np.ndarray:
        values = np.asarray(values)
        queries = np.asarray(queries)
        offsets = np.asarray(offsets, dtype=np.int64)
        query_offsets = np.asarray(query_offsets, dtype=np.int64)
        if (
            queries.size < self.min_parallel_elements
            or self.workers <= 1
            or offsets.size < 3
            or values.dtype.hasobject
        ):
            self._count("blockwise_searchsorted", False)
            return self._numpy.blockwise_searchsorted(
                values, offsets, queries, query_offsets, side=side
            )
        if query_offsets.size != offsets.size:
            raise ValueError("need exactly one query block per segment")
        if int(query_offsets[-1]) != queries.size:
            raise ValueError("query_offsets must cover the query array")

        def attempt() -> np.ndarray:
            self._ensure_pool()
            arena = self._arena
            arena.begin(
                _aligned(values.nbytes) + _aligned(offsets.nbytes)
                + _aligned(queries.nbytes) + _aligned(query_offsets.nbytes)
                + _aligned(queries.size * 8) + 8 * _ALIGN
            )
            d = {
                "values": arena.put(values),
                "offsets": arena.put(offsets),
                "queries": arena.put(queries),
                "query_offsets": arena.put(query_offsets),
                "side": side,
            }
            out, d_out = arena.alloc(queries.size, np.int64)
            cuts = _weighted_cuts(query_offsets, self.workers)
            tasks = []
            for w in range(self.workers):
                s0, s1 = int(cuts[w]), int(cuts[w + 1])
                if s1 > s0 and query_offsets[s1] > query_offsets[s0]:
                    payload = dict(d)
                    payload.update({"out": d_out, "s0": s0, "s1": s1})
                    tasks.append((w, "blockwise_searchsorted", payload))
            self._run(tasks)
            return out.copy()

        return self._supervised(
            "blockwise_searchsorted", attempt,
            lambda: self._numpy.blockwise_searchsorted(
                values, offsets, queries, query_offsets, side=side
            ),
        )

    def ragged_bincount(
        self,
        seg: np.ndarray,
        key: np.ndarray,
        key_offsets: np.ndarray,
        validate: bool = True,
    ) -> np.ndarray:
        seg = np.asarray(seg)
        key = np.asarray(key)
        key_offsets = np.asarray(key_offsets, dtype=np.int64)
        nbins = int(key_offsets[-1]) if key_offsets.size else 0
        n = int(seg.size)
        # Partial histograms cost workers * nbins extra writes and memory;
        # shard only while that overhead stays below the element work.
        if (
            n < self.min_parallel_elements
            or self.workers <= 1
            or nbins * self.workers > max(4 * n, 1 << 16)
        ):
            self._count("ragged_bincount", False)
            return self._numpy.ragged_bincount(seg, key, key_offsets, validate=validate)
        if seg.shape != key.shape:
            raise ValueError("seg and key must have the same shape")
        if validate and seg.size:
            widths = np.diff(key_offsets)
            if key.min(initial=0) < 0 or np.any(key >= widths[seg]):
                raise IndexError("bin index out of range for its segment")

        def attempt() -> np.ndarray:
            self._ensure_pool()
            arena = self._arena
            arena.begin(
                _aligned(seg.nbytes) + _aligned(key.nbytes)
                + _aligned(key_offsets.nbytes)
                + _aligned(self.workers * nbins * 8) + 8 * _ALIGN
            )
            d_seg = arena.put(seg)
            d_key = arena.put(key)
            d_koff = arena.put(key_offsets)
            counts, d_counts = arena.alloc((self.workers, nbins), np.int64)
            cuts = _range_cuts(n, self.workers)
            tasks = []
            for w in range(self.workers):
                e0, e1 = cuts[w], cuts[w + 1]
                if e1 > e0:
                    tasks.append((w, "ragged_bincount", {
                        "seg": d_seg, "key": d_key, "key_offsets": d_koff,
                        "counts": d_counts, "row": w, "e0": e0, "e1": e1,
                    }))
                else:
                    counts[w, :] = 0
            self._run(tasks)
            return counts.sum(axis=0)

        return self._supervised(
            "ragged_bincount", attempt,
            lambda: self._numpy.ragged_bincount(
                seg, key, key_offsets, validate=False
            ),
        )

    def bincount(
        self,
        key: np.ndarray,
        minlength: int = 0,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        key = np.asarray(key)
        n = int(key.size)
        if (
            n < max(self.min_parallel_elements, 1)
            or self.workers <= 1
            or weights is not None  # float partial sums would reassociate
            or key.ndim != 1
            or key.dtype.kind not in "iu"
        ):
            self._count("bincount", False)
            return self._numpy.bincount(key, minlength=minlength, weights=weights)
        kmin = int(key.min())
        if kmin < 0:  # numpy's own error path, verbatim
            self._count("bincount", False)
            return self._numpy.bincount(key, minlength=minlength, weights=weights)
        nbins = max(int(minlength), int(key.max()) + 1)
        if nbins * self.workers > max(4 * n, 1 << 16):
            self._count("bincount", False)
            return self._numpy.bincount(key, minlength=minlength, weights=weights)
        def attempt() -> np.ndarray:
            self._ensure_pool()
            arena = self._arena
            arena.begin(
                _aligned(key.nbytes) + _aligned(self.workers * nbins * 8)
                + 4 * _ALIGN
            )
            d_key = arena.put(key)
            counts, d_counts = arena.alloc((self.workers, nbins), np.int64)
            cuts = _range_cuts(n, self.workers)
            tasks = []
            for w in range(self.workers):
                e0, e1 = cuts[w], cuts[w + 1]
                if e1 > e0:
                    tasks.append((w, "bincount", {
                        "key": d_key, "counts": d_counts, "row": w,
                        "e0": e0, "e1": e1,
                    }))
                else:
                    counts[w, :] = 0
            self._run(tasks)
            return counts.sum(axis=0)

        return self._supervised(
            "bincount", attempt,
            lambda: self._numpy.bincount(key, minlength=minlength),
        )

    def stable_key_argsort(self, key: np.ndarray, key_bound: int) -> np.ndarray:
        key = np.asarray(key)
        n = int(key.size)
        # The parallel counting sort needs a per-worker count matrix; the
        # engine's keys are (PE, bucket/group) composites well under 2**16,
        # which keeps that matrix tiny.  Wider keys run inline.
        if (
            n < self.min_parallel_elements
            or self.workers <= 1
            or not 0 < key_bound <= 2 ** 16
            or key.ndim != 1
            or key.dtype.kind not in "iu"
        ):
            self._count("stable_key_argsort", False)
            return self._numpy.stable_key_argsort(key, key_bound)
        def attempt() -> np.ndarray:
            self._ensure_pool()
            arena = self._arena
            bound = int(key_bound)
            arena.begin(
                _aligned(key.nbytes)
                + 2 * _aligned(self.workers * bound * 8)
                + _aligned(n * 8) + 8 * _ALIGN
            )
            d_key = arena.put(key)
            counts, d_counts = arena.alloc((self.workers, bound), np.int64)
            starts, d_starts = arena.alloc((self.workers, bound), np.int64)
            out, d_out = arena.alloc(n, np.int64)
            cuts = _range_cuts(n, self.workers)
            shards = [
                (w, cuts[w], cuts[w + 1])
                for w in range(self.workers) if cuts[w + 1] > cuts[w]
            ]
            self._run([
                (w, "bincount", {
                    "key": d_key, "counts": d_counts, "row": w,
                    "e0": e0, "e1": e1,
                })
                for w, e0, e1 in shards
            ])
            for w in range(self.workers):
                if cuts[w + 1] == cuts[w]:
                    counts[w, :] = 0
            # Write starts: global exclusive rank of (worker, key) in stable
            # order — key-major, worker-minor, then in-shard arrival order.
            col_tot = counts.sum(axis=0)
            base = np.cumsum(col_tot) - col_tot
            np.cumsum(counts, axis=0, out=starts)
            starts -= counts
            starts += base[None, :]
            self._run([
                (w, "rank_scatter", {
                    "key": d_key, "counts": d_counts, "starts": d_starts,
                    "out": d_out, "row": w, "e0": e0, "e1": e1,
                    "key_bound": bound,
                })
                for w, e0, e1 in shards
            ])
            return out.copy()

        return self._supervised(
            "stable_key_argsort", attempt,
            lambda: self._numpy.stable_key_argsort(key, key_bound),
        )

    def stable_two_key_argsort(
        self,
        major: np.ndarray,
        minor: np.ndarray,
        major_bound: int,
        minor_bound: int,
    ) -> np.ndarray:
        major = np.asarray(major)
        minor = np.asarray(minor)
        n = int(major.size)
        if (
            n < self.min_parallel_elements
            or self.workers <= 1
            or self._degraded is not None
        ):
            self._count("stable_two_key_argsort", False)
            return self._numpy.stable_two_key_argsort(
                major, minor, major_bound, minor_bound
            )
        self._count("stable_two_key_argsort", True)
        if 0 <= major_bound * minor_bound <= 2 ** 16:
            # Same composed key as the reference; the stable permutation
            # of equal key values is unique, so the parallel counting sort
            # reproduces it bit for bit.
            key = major.astype(np.int64, copy=False) * minor_bound + minor
            return self.stable_key_argsort(key, major_bound * minor_bound)
        if major_bound <= 2 ** 16 and minor_bound <= 2 ** 16:
            # LSD two-pass radix, each pass a parallel stable counting
            # sort; gathers between passes run sharded too.
            order = self.stable_key_argsort(minor, minor_bound)
            order2 = self.stable_key_argsort(self.gather(major, order), major_bound)
            return self.gather(order, order2)
        return self._numpy.stable_two_key_argsort(
            major, minor, major_bound, minor_bound
        )

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        indices = np.asarray(indices)
        n = int(indices.size)
        if (
            n < self.min_parallel_elements
            or self.workers <= 1
            or values.ndim != 1
            or indices.ndim != 1
            or indices.dtype.kind not in "iu"
            or values.dtype.hasobject
        ):
            self._count("gather", False)
            return self._numpy.gather(values, indices)
        def attempt() -> np.ndarray:
            self._ensure_pool()
            arena = self._arena
            arena.begin(
                _aligned(values.nbytes) + _aligned(indices.nbytes)
                + _aligned(n * values.dtype.itemsize) + 4 * _ALIGN
            )
            d_vals = arena.put(values)
            d_idx = arena.put(indices)
            out, d_out = arena.alloc(n, values.dtype)
            cuts = _range_cuts(n, self.workers)
            tasks = []
            for w in range(self.workers):
                e0, e1 = cuts[w], cuts[w + 1]
                if e1 > e0:
                    tasks.append((w, "gather", {
                        "values": d_vals, "indices": d_idx, "out": d_out,
                        "e0": e0, "e1": e1,
                    }))
            self._run(tasks)
            return out.copy()

        return self._supervised(
            "gather", attempt, lambda: self._numpy.gather(values, indices)
        )

    def take_ranges(
        self, values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        values = np.asarray(values)
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if starts.shape != lengths.shape:
            raise ValueError("starts and lengths must have the same shape")
        total = int(lengths.sum())
        if (
            total < self.min_parallel_elements
            or self.workers <= 1
            or values.ndim != 1
            or starts.ndim != 1
            or values.dtype.hasobject
        ):
            self._count("take_ranges", False)
            return self._numpy.take_ranges(values, starts, lengths)
        def attempt() -> np.ndarray:
            self._ensure_pool()
            arena = self._arena
            arena.begin(
                _aligned(values.nbytes) + _aligned(starts.nbytes)
                + _aligned(lengths.nbytes)
                + _aligned(total * values.dtype.itemsize) + 8 * _ALIGN
            )
            d_vals = arena.put(values)
            d_starts = arena.put(starts)
            d_lens = arena.put(lengths)
            out, d_out = arena.alloc(total, values.dtype)
            prefix = np.zeros(lengths.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=prefix[1:])
            cuts = _weighted_cuts(prefix, self.workers)
            tasks = []
            for w in range(self.workers):
                r0, r1 = int(cuts[w]), int(cuts[w + 1])
                if r1 > r0 and prefix[r1] > prefix[r0]:
                    tasks.append((w, "take_ranges", {
                        "values": d_vals, "starts": d_starts,
                        "lengths": d_lens, "out": d_out,
                        "r0": r0, "r1": r1, "o0": int(prefix[r0]),
                    }))
            self._run(tasks)
            return out.copy()

        return self._supervised(
            "take_ranges", attempt,
            lambda: self._numpy.take_ranges(values, starts, lengths),
        )
