"""``KernelBackend`` — the engine's whole-machine primitives as an interface.

The flat execution engine issues a handful of *element-scale* kernels per
recursion level (segmented sorts, segmented/blockwise binary searches,
ragged histograms, stable radix argsorts and the gather passes that apply
them).  Everything else the engine does — cost accounting, island
bookkeeping, message descriptor assembly — is tiny by comparison.  This
module extracts exactly that hot kernel set behind a small ABC so that one
simulated machine can be driven by interchangeable execution substrates:

* :class:`~repro.dist.backend.numpy_backend.NumpyBackend` — backend zero,
  the existing single-process numpy kernels of :mod:`repro.dist.flatops`;
* :class:`~repro.dist.backend.sharedmem.SharedMemBackend` — a persistent
  worker pool over shared memory that partitions each kernel by PE/segment
  or element ranges (the CSR ``DistArray`` layout splits cleanly on segment
  boundaries) and merges the per-shard results deterministically.

**Byte-identity contract.**  Every backend must return bit-identical arrays
for identical inputs — the engine's equivalence suites pin the flat engine
against the per-PE reference *through* whichever backend is active, so a
backend that reorders ties, changes a dtype or reassociates a float sum is
a correctness bug, not a performance trade-off.  The kernels below are
chosen so that deterministic parallel merges exist: value sorts are
strategy-independent, searches and gathers are positionally independent,
histogram counts are integer sums, and stable argsorts have a unique
answer that a counting sort reproduces shard by shard.

Backends never touch modelled time: kernels are simulator *bookkeeping*,
which the cost-model contract leaves free to optimise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Union

import numpy as np


class KernelBackend(ABC):
    """Interface for the flat engine's whole-machine array kernels.

    Semantics of every method are defined by the reference implementations
    in :mod:`repro.dist.flatops` (the ``*_numpy`` functions); see their
    docstrings for the exact contracts.  Implementations must be
    *byte-identical* to those references on every input.
    """

    #: Short identifier used by ``--backend`` flags and ``REPRO_BACKEND``.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Segmented sorting and searching
    # ------------------------------------------------------------------
    @abstractmethod
    def segmented_sort_values(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Sort every CSR segment independently (per-PE local sorts)."""

    @abstractmethod
    def segmented_searchsorted(
        self,
        values: np.ndarray,
        offsets: np.ndarray,
        queries: np.ndarray,
        query_seg: np.ndarray,
        side: Union[str, np.ndarray] = "left",
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Insertion position of every query inside its own sorted segment."""

    @abstractmethod
    def blockwise_searchsorted(
        self,
        values: np.ndarray,
        offsets: np.ndarray,
        queries: np.ndarray,
        query_offsets: np.ndarray,
        side: str = "left",
    ) -> np.ndarray:
        """Per-segment ``searchsorted`` for queries grouped by segment."""

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    @abstractmethod
    def ragged_bincount(
        self,
        seg: np.ndarray,
        key: np.ndarray,
        key_offsets: np.ndarray,
        validate: bool = True,
    ) -> np.ndarray:
        """Per-segment histograms with per-segment bin counts, back to back."""

    @abstractmethod
    def bincount(
        self,
        key: np.ndarray,
        minlength: int = 0,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``np.bincount`` (the engine's element-scale reductions)."""

    # ------------------------------------------------------------------
    # Stable radix argsort / reorder
    # ------------------------------------------------------------------
    @abstractmethod
    def stable_key_argsort(self, key: np.ndarray, key_bound: int) -> np.ndarray:
        """Stable argsort of non-negative integer keys below ``key_bound``."""

    @abstractmethod
    def stable_two_key_argsort(
        self,
        major: np.ndarray,
        minor: np.ndarray,
        major_bound: int,
        minor_bound: int,
    ) -> np.ndarray:
        """Stable argsort by ``(major, minor)`` pairs of small ints."""

    # ------------------------------------------------------------------
    # Gather / exchange assembly
    # ------------------------------------------------------------------
    @abstractmethod
    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """``values[indices]`` — apply a permutation / index plane."""

    @abstractmethod
    def take_ranges(
        self, values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        """Concatenate ``values[starts[k]:starts[k]+lengths[k]]`` for all k.

        The gather-scatter primitive of exchange assembly and
        ``DistArray.take_segments``: equivalent to
        ``values[concat_ranges(starts, lengths)]`` without materialising
        the index ramp in the caller.
        """

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        """Whether kernels may execute on more than one OS thread/process."""
        return False

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kernel dispatch counters (empty for stateless backends)."""
        return {}

    def effective_name(self) -> str:
        """The name describing how kernels *actually* execute right now.

        Equals :attr:`name` unless the backend has demoted itself (e.g. a
        supervised pool that degraded to inline execution after repeated
        worker failures); ``machine.backend_used`` records this value so a
        run's provenance shows the substrate that really ran it.
        """
        return self.name

    def close(self) -> None:
        """Release pools/shared memory; the backend stays usable (lazy restart)."""

    def release_workspace(self) -> None:
        """Drop pooled workspace-arena buffers wherever kernels execute.

        The default releases the process arena (in-process backends draw
        their scratch from it); multiprocess backends additionally forward
        the release to their workers, each of which owns a private arena.
        Purely a memory hook — outputs are unaffected.
        """
        from repro.dist.workspace import get_arena

        get_arena().release()

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.name

    def __enter__(self) -> "KernelBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.describe()})"
