"""Backend zero: the in-process numpy reference kernels.

A stateless adapter binding the :class:`~repro.dist.backend.base.
KernelBackend` interface to the ``*_numpy`` reference implementations in
:mod:`repro.dist.flatops`.  Every other backend is pinned byte-for-byte
against this one.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.dist import flatops
from repro.dist.backend.base import KernelBackend


class NumpyBackend(KernelBackend):
    """Single-process numpy execution of the engine's kernels."""

    name = "numpy"

    def segmented_sort_values(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        return flatops.segmented_sort_values_numpy(values, offsets)

    def segmented_searchsorted(
        self,
        values: np.ndarray,
        offsets: np.ndarray,
        queries: np.ndarray,
        query_seg: np.ndarray,
        side: Union[str, np.ndarray] = "left",
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return flatops.segmented_searchsorted_numpy(
            values, offsets, queries, query_seg, side=side, lo=lo, hi=hi
        )

    def blockwise_searchsorted(
        self,
        values: np.ndarray,
        offsets: np.ndarray,
        queries: np.ndarray,
        query_offsets: np.ndarray,
        side: str = "left",
    ) -> np.ndarray:
        return flatops.blockwise_searchsorted_numpy(
            values, offsets, queries, query_offsets, side=side
        )

    def ragged_bincount(
        self,
        seg: np.ndarray,
        key: np.ndarray,
        key_offsets: np.ndarray,
        validate: bool = True,
    ) -> np.ndarray:
        return flatops.ragged_bincount_numpy(seg, key, key_offsets, validate=validate)

    def bincount(
        self,
        key: np.ndarray,
        minlength: int = 0,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return flatops.bincount_numpy(key, minlength=minlength, weights=weights)

    def stable_key_argsort(self, key: np.ndarray, key_bound: int) -> np.ndarray:
        return flatops.stable_key_argsort_numpy(key, key_bound)

    def stable_two_key_argsort(
        self,
        major: np.ndarray,
        minor: np.ndarray,
        major_bound: int,
        minor_bound: int,
    ) -> np.ndarray:
        return flatops.stable_two_key_argsort_numpy(
            major, minor, major_bound, minor_bound
        )

    def gather(self, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return flatops.gather_numpy(values, indices)

    def take_ranges(
        self, values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
    ) -> np.ndarray:
        return flatops.take_ranges_numpy(values, starts, lengths)
