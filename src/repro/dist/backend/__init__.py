"""Kernel backend registry: resolution, installation, scoped switching.

The flat engine's element-scale kernels (:mod:`repro.dist.flatops`)
dispatch to one process-wide active :class:`~repro.dist.backend.base.
KernelBackend`.  This package resolves *backend specs* to instances and
swaps the active backend:

* ``get_backend(None)`` — the process default: whatever :func:`install`
  set, else the ``REPRO_BACKEND`` environment variable, else ``numpy``.
* ``get_backend("numpy")`` — the in-process reference backend.
* ``get_backend("sharedmem")`` / ``"sharedmem:4"`` — the shared-memory
  worker-pool backend (optionally with an explicit worker count).
* ``get_backend(instance)`` — pass-through for a constructed backend.

Named specs resolve to process-wide singletons so repeated runs share one
worker pool.  :func:`use_backend` scopes a switch to a ``with`` block —
that is what ``run_on_machine(..., backend=...)`` uses, so one process can
compare backends without touching global state permanently.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Union

from repro.dist import flatops
from repro.dist.backend.base import KernelBackend
from repro.dist.backend.numpy_backend import NumpyBackend
from repro.dist.backend.sharedmem import SharedMemBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "SharedMemBackend",
    "BACKEND_NAMES",
    "get_backend",
    "current_backend",
    "install",
    "use_backend",
]

#: Spec names accepted by ``--backend`` flags and ``REPRO_BACKEND``
#: (``sharedmem`` also accepts a ``:N`` worker-count suffix).
BACKEND_NAMES = ("numpy", "sharedmem")

_INSTANCES: dict = {}
_DEFAULT: Optional[KernelBackend] = None  # set by install()


def _from_spec(spec: str) -> KernelBackend:
    name, _, arg = spec.partition(":")
    name = name.strip().lower()
    if name == "numpy" and not arg:
        return NumpyBackend()
    if name == "sharedmem":
        if not arg:
            return SharedMemBackend()
        try:
            workers = int(arg)
        except ValueError:
            raise ValueError(
                f"bad backend spec {spec!r}: worker count must be an integer"
            ) from None
        return SharedMemBackend(workers=workers)
    raise ValueError(
        f"unknown backend {spec!r}; known: {', '.join(BACKEND_NAMES)} "
        "(sharedmem takes an optional ':<workers>' suffix)"
    )


def get_backend(
    spec: Union[None, str, KernelBackend] = None
) -> KernelBackend:
    """Resolve a backend spec to a (usually shared) instance."""
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        if _DEFAULT is not None:
            return _DEFAULT
        spec = os.environ.get("REPRO_BACKEND", "").strip() or "numpy"
    key = str(spec).strip().lower()
    inst = _INSTANCES.get(key)
    if inst is None:
        inst = _from_spec(key)
        _INSTANCES[key] = inst
    return inst


def current_backend() -> KernelBackend:
    """The backend the kernel dispatchers are using right now."""
    return flatops._active_backend()


def install(spec: Union[None, str, KernelBackend]) -> KernelBackend:
    """Set the process-wide active backend; returns the instance.

    ``install(None)`` reverts to environment resolution (``REPRO_BACKEND``
    or numpy).
    """
    global _DEFAULT
    backend = None if spec is None else get_backend(spec)
    _DEFAULT = backend
    flatops._BACKEND = backend
    return backend if backend is not None else get_backend(None)


@contextmanager
def use_backend(spec: Union[None, str, KernelBackend]):
    """Scope the active backend to a ``with`` block.

    ``None`` keeps whatever is active (so call sites can thread an optional
    backend argument through unconditionally).
    """
    if spec is None:
        yield current_backend()
        return
    saved_default = _DEFAULT
    saved_active = flatops._BACKEND
    backend = install(spec)
    try:
        yield backend
    finally:
        globals()["_DEFAULT"] = saved_default
        flatops._BACKEND = saved_active
