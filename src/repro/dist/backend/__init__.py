"""Kernel backend registry: resolution, installation, scoped switching.

The flat engine's element-scale kernels (:mod:`repro.dist.flatops`)
dispatch to one process-wide active :class:`~repro.dist.backend.base.
KernelBackend`.  This package resolves *backend specs* to instances and
swaps the active backend:

* ``get_backend(None)`` — the process default: whatever :func:`install`
  set, else the ``REPRO_BACKEND`` environment variable, else ``numpy``.
* ``get_backend("numpy")`` — the in-process reference backend.
* ``get_backend("sharedmem")`` / ``"sharedmem:4"`` — the shared-memory
  worker-pool backend (optionally with an explicit worker count).
* ``get_backend(instance)`` — pass-through for a constructed backend.

Named specs resolve to process-wide singletons so repeated runs share one
worker pool.  :func:`use_backend` scopes a switch to a ``with`` block —
that is what ``run_on_machine(..., backend=...)`` uses, so one process can
compare backends without touching global state permanently.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Union

from repro.dist import flatops
from repro.dist.backend.base import KernelBackend
from repro.dist.backend.numpy_backend import NumpyBackend
from repro.dist.backend.sharedmem import SharedMemBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "SharedMemBackend",
    "BACKEND_NAMES",
    "validate_backend_spec",
    "get_backend",
    "current_backend",
    "install",
    "use_backend",
]

#: Spec names accepted by ``--backend`` flags and ``REPRO_BACKEND``
#: (``sharedmem`` also accepts a ``:N`` worker-count suffix).
BACKEND_NAMES = ("numpy", "sharedmem")


def validate_backend_spec(spec: Optional[str], source: str = "backend spec") -> Optional[str]:
    """Parse-check a backend spec string without instantiating anything.

    Every entry point that *accepts* a spec (``SimulatedMachine``,
    ``run_on_machine``, ``--backend`` flags, ``REPRO_BACKEND``) calls this
    up front so a typo fails at configuration time with a clear message,
    not worker-pool construction time deep inside a run.  ``source`` names
    the entry point in the error (e.g. ``"REPRO_BACKEND"``).  Returns the
    normalised spec (or ``None`` for no spec).
    """
    if spec is None:
        return None
    key = str(spec).strip().lower()
    if not key:
        return None
    name, _, arg = key.partition(":")
    if name == "numpy":
        if arg:
            raise ValueError(
                f"bad {source} {spec!r}: numpy takes no ':' argument"
            )
        return key
    if name == "sharedmem":
        if not arg:
            return key
        try:
            workers = int(arg)
        except ValueError:
            raise ValueError(
                f"bad {source} {spec!r}: worker count must be an integer"
            ) from None
        if workers < 1:
            raise ValueError(
                f"bad {source} {spec!r}: worker count must be >= 1"
            )
        return key
    raise ValueError(
        f"unknown {source} {spec!r}; known: {', '.join(BACKEND_NAMES)} "
        "(sharedmem takes an optional ':<workers>' suffix)"
    )


_INSTANCES: dict = {}
_DEFAULT: Optional[KernelBackend] = None  # set by install()


def _from_spec(spec: str) -> KernelBackend:
    spec = validate_backend_spec(spec, source="backend spec") or "numpy"
    name, _, arg = spec.partition(":")
    if name == "numpy":
        return NumpyBackend()
    if not arg:
        return SharedMemBackend()
    return SharedMemBackend(workers=int(arg))


def get_backend(
    spec: Union[None, str, KernelBackend] = None
) -> KernelBackend:
    """Resolve a backend spec to a (usually shared) instance."""
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        if _DEFAULT is not None:
            return _DEFAULT
        spec = os.environ.get("REPRO_BACKEND", "").strip() or "numpy"
        # Name the env var in the error: the user never typed a flag.
        validate_backend_spec(spec, source="REPRO_BACKEND spec")
    key = str(spec).strip().lower()
    inst = _INSTANCES.get(key)
    if inst is None:
        inst = _from_spec(key)
        _INSTANCES[key] = inst
    return inst


def current_backend() -> KernelBackend:
    """The backend the kernel dispatchers are using right now."""
    return flatops._active_backend()


def install(spec: Union[None, str, KernelBackend]) -> KernelBackend:
    """Set the process-wide active backend; returns the instance.

    ``install(None)`` reverts to environment resolution (``REPRO_BACKEND``
    or numpy).
    """
    global _DEFAULT
    backend = None if spec is None else get_backend(spec)
    _DEFAULT = backend
    flatops._BACKEND = backend
    return backend if backend is not None else get_backend(None)


@contextmanager
def use_backend(spec: Union[None, str, KernelBackend]):
    """Scope the active backend to a ``with`` block.

    ``None`` keeps whatever is active (so call sites can thread an optional
    backend argument through unconditionally).
    """
    if spec is None:
        yield current_backend()
        return
    saved_default = _DEFAULT
    saved_active = flatops._BACKEND
    backend = install(spec)
    try:
        yield backend
    finally:
        globals()["_DEFAULT"] = saved_default
        flatops._BACKEND = saved_active
