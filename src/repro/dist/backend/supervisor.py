"""Supervised worker pool: liveness, deadlines, respawn, bounded retry.

The shared-memory backend's original pool was a bare list of processes and
pipes: the parent blocked on ``conn.recv()`` forever, so a SIGKILL'd or
OOM'd worker hung the whole run, and any pipe error aborted it.  This
module wraps the same processes in a supervisor that makes worker death a
*recoverable* event:

* **Per-call deadline** — the parent polls the result pipe in short slices
  (``conn.poll``) instead of blocking, checking worker liveness between
  slices; an optional wall-clock timeout per dispatch round turns a stuck
  worker into a failure instead of a hang.
* **Liveness detection** — ``proc.is_alive()`` plus EOF on the pipe; a
  dead worker is detected within one poll slice.
* **Automatic respawn** — a dead (or timed-out, then killed) worker is
  replaced by a fresh process attached to the *same* arena file; the
  arena path never changes, so respawned workers map the already-written
  call regions and can re-execute the failed shard directly.
* **Bounded re-dispatch** — the failed shard tasks are re-sent (to the
  respawned workers) up to ``max_shard_retries`` times.  Kernels are pure
  functions of the arena inputs and write only their own shard's output
  region, so a retry is byte-identical to an undisturbed execution.
* **Escalating shutdown** — ``close()`` walks quit-message → ``join`` →
  ``terminate`` → ``kill`` so a wedged worker cannot leak past interpreter
  exit (the backend guarantees the arena unlink separately).

When the retry budget is exhausted the supervisor raises
:class:`PoolFailureError`; the backend catches it, recomputes the kernel
inline on the numpy reference (still byte-identical) and — after enough
consecutive pool failures — demotes itself to inline execution for good.
Deterministic worker-side *errors* (validation raises inside a kernel) are
not retried: the kernels are pure, so the retry would fail identically;
they surface as :class:`WorkerKernelError` exactly like the old behaviour.

Chaos injection (``REPRO_CHAOS`` — see :mod:`repro.chaos`) hooks in here:
the supervisor SIGKILLs one of its own workers after dispatching a round,
which is indistinguishable from a real OOM kill to the recovery machinery.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos import ChaosState

#: One poll slice: how long the parent sleeps in ``conn.poll`` before
#: re-checking worker liveness.  Death detection latency is bounded by it.
_POLL_S = 0.05

#: Counter keys every supervisor exposes (all start at zero).
RECOVERY_COUNTERS = (
    "worker_deaths",
    "respawns",
    "shard_retries",
    "call_timeouts",
    "pool_failures",
    "chaos_kills",
)


class PoolFailureError(RuntimeError):
    """The pool could not complete a dispatch round within its retry budget."""


class WorkerKernelError(RuntimeError):
    """A kernel raised *inside* a worker (deterministic — never retried)."""


class SupervisedPool:
    """A fixed-size pool of kernel workers with supervision.

    Parameters
    ----------
    workers:
        Pool size.  Task worker indices passed to :meth:`run` must be in
        ``range(workers)``.
    arena_path:
        Path of the shared arena file every (re)spawned worker maps.
    worker_target:
        The worker main function, called as ``worker_target(conn,
        arena_path)`` in the child process.
    call_timeout:
        Optional per-dispatch-round wall-clock deadline in seconds.  On
        expiry the still-pending workers are killed, respawned and their
        shards re-dispatched (counted under ``call_timeouts``).
    max_shard_retries:
        How many times a failed shard may be re-dispatched before the
        round raises :class:`PoolFailureError`.
    chaos:
        Optional :class:`~repro.chaos.ChaosState` whose ``kill_worker``
        draw SIGKILLs one worker per dispatch round (testing hook).
    """

    def __init__(
        self,
        workers: int,
        arena_path: str,
        worker_target: Callable,
        call_timeout: Optional[float] = None,
        max_shard_retries: int = 2,
        chaos: Optional[ChaosState] = None,
    ):
        import multiprocessing as mp

        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = mp.get_context("spawn")
        self.workers = int(workers)
        self.arena_path = arena_path
        self.worker_target = worker_target
        self.call_timeout = call_timeout
        self.max_shard_retries = int(max_shard_retries)
        self.chaos = chaos
        self.counters: Dict[str, int] = {k: 0 for k in RECOVERY_COUNTERS}
        self._procs: List[object] = [None] * self.workers
        self._conns: List[object] = [None] * self.workers
        for w in range(self.workers):
            self._spawn(w)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, widx: int) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=self.worker_target,
            args=(child, self.arena_path),
            daemon=True,
        )
        proc.start()
        child.close()
        self._procs[widx] = proc
        self._conns[widx] = parent

    def _respawn(self, widx: int) -> None:
        """Replace a dead/stuck worker with a fresh one on the same arena."""
        proc = self._procs[widx]
        conn = self._conns[widx]
        if proc is not None and proc.is_alive():
            # Stuck (deadline expiry): a SIGKILL cannot be ignored the way
            # the old close()'s terminate() could.
            proc.kill()
            proc.join(timeout=5)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._spawn(widx)
        self.counters["respawns"] += 1

    def procs(self) -> List[object]:
        """The live worker process objects (tests kill them directly)."""
        return list(self._procs)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(self, tasks: List[Tuple[int, str, dict]], arena_size: int) -> None:
        """Execute one round of shard tasks; heal and retry on worker death.

        ``tasks`` is a list of ``(worker_index, kernel_name, payload)``
        with at most one task per worker index.  Raises
        :class:`WorkerKernelError` on a deterministic in-kernel exception
        and :class:`PoolFailureError` once ``max_shard_retries`` is spent.
        """
        pending = list(tasks)
        last_failure = "no failure recorded"
        for attempt in range(self.max_shard_retries + 1):
            if attempt > 0:
                self.counters["shard_retries"] += len(pending)
            pending, last_failure = self._dispatch_round(pending, arena_size)
            if not pending:
                return
        self.counters["pool_failures"] += 1
        raise PoolFailureError(
            f"sharedmem pool failed a dispatch round {self.max_shard_retries + 1} "
            f"times; last failure: {last_failure}"
        )

    def _dispatch_round(
        self, tasks: List[Tuple[int, str, dict]], arena_size: int
    ) -> Tuple[List[Tuple[int, str, dict]], str]:
        """Send + collect one attempt; returns (failed tasks, last reason)."""
        failed: List[Tuple[int, str, dict]] = []
        reason = "no failure recorded"
        sent: List[Tuple[int, str, dict]] = []
        for task in tasks:
            widx, name, payload = task
            proc = self._procs[widx]
            if proc is None or not proc.is_alive():
                # Died between rounds (or a previous round's casualty that
                # held no task then): heal before sending.
                self.counters["worker_deaths"] += 1
                self._respawn(widx)
            try:
                self._conns[widx].send((name, arena_size, payload))
            except (BrokenPipeError, OSError):
                self.counters["worker_deaths"] += 1
                self._respawn(widx)
                failed.append(task)
                reason = f"worker {widx} pipe broke while sending {name!r}"
                continue
            sent.append(task)
        if sent and self.chaos is not None:
            victim = self.chaos.kill_worker(self.workers)
            if victim is not None:
                proc = self._procs[victim]
                if proc is not None and proc.pid is not None:
                    self.counters["chaos_kills"] += 1
                    try:
                        os.kill(proc.pid, signal.SIGKILL)
                    except (OSError, ProcessLookupError):  # pragma: no cover
                        pass
        deadline = (
            None if self.call_timeout is None
            else time.monotonic() + self.call_timeout
        )
        errors: List[str] = []
        for task in sent:
            widx, name, _ = task
            status, detail = self._recv(widx, deadline)
            if status == "ok":
                continue
            if status == "err":
                errors.append(f"[worker {widx}, kernel {name}]\n{detail}")
                continue
            if status == "timeout":
                self.counters["call_timeouts"] += 1
                reason = (
                    f"worker {widx} missed the {self.call_timeout}s deadline "
                    f"on {name!r}"
                )
            else:  # died
                self.counters["worker_deaths"] += 1
                reason = f"worker {widx} died executing {name!r}"
            self._respawn(widx)
            failed.append(task)
        if errors:
            # Deterministic kernel-level exception: retrying a pure kernel
            # reproduces it, so surface it to the caller unchanged.
            raise WorkerKernelError(
                "sharedmem backend worker failed:\n" + "\n".join(errors)
            )
        return failed, reason

    def _recv(self, widx: int, deadline: Optional[float]):
        """Poll one worker's pipe with liveness checks and a deadline."""
        conn = self._conns[widx]
        proc = self._procs[widx]
        while True:
            wait = _POLL_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return ("timeout", None)
                wait = min(wait, remaining)
            try:
                if conn.poll(wait):
                    return conn.recv()
            except (EOFError, OSError):
                return ("died", None)
            if not proc.is_alive():
                # Drain a result that raced the death (worker answered,
                # then exited/was killed before we polled).
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                return ("died", None)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker, escalating quit → join → terminate → kill.

        Never raises: each step is best-effort and the escalation
        guarantees no process outlives the pool (the old shutdown stopped
        at an ignorable ``terminate()`` and could leak both the process
        and, through the caller aborting, the /dev/shm arena file).
        """
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=2)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            if proc.is_alive():  # terminate() ignored/blocked: escalate
                proc.kill()
                proc.join(timeout=5)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        self._procs = [None] * self.workers
        self._conns = [None] * self.workers
