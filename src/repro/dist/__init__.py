"""Flat distributed-array execution engine.

The seed implementation of this reproduction represented every distributed
array as a Python ``List[np.ndarray]`` (one array per PE) and drove each
algorithm phase with ``for i in range(p)`` loops.  That caps realistic
simulations around ``p ~ 256``: the paper (Section 7) evaluates AMS-sort and
RLM-sort at up to ``2^15`` PEs, far past what per-PE Python loops can carry.

This package provides the *flat* engine:

* :class:`~repro.dist.array.DistArray` — one contiguous ``values`` buffer
  plus a ``p + 1`` ``offsets`` vector (CSR-style ragged layout, one segment
  per PE).  The whole machine's data is one numpy array; per-PE structure is
  pure offset arithmetic.
* :mod:`~repro.dist.flatops` — the vectorised kernels the engine is built
  from: segment-id expansion, ragged gathers (``concat_ranges``), segmented
  stable sorts, and interval splitting against cut points (the primitive
  behind message assembly in the data-delivery algorithms).

Every algorithm of :mod:`repro.core` has been ported onto ``DistArray``; the
ports charge *exactly* the same modelled costs and produce *byte-identical*
outputs, clocks and phase breakdowns as the per-PE reference implementations
(which are retained as ``*_reference`` functions and verified against the
flat engine by ``tests/dist_engine/test_engine_equivalence.py``).  Public entry
points (:func:`repro.core.runner.run_on_machine`, :func:`repro.ams_sort`,
...) still accept ``List[np.ndarray]`` via the cheap
:meth:`DistArray.from_list` / :meth:`DistArray.to_list` converters.
"""

from repro.dist.array import DistArray
from repro.dist.ctr_rng import CounterRNG, philox4x32
from repro.dist.flatops import (
    concat_ranges,
    segment_ids,
    segmented_sort_values,
    split_intervals,
    stable_key_argsort,
)

__all__ = [
    "CounterRNG",
    "DistArray",
    "concat_ranges",
    "philox4x32",
    "segment_ids",
    "segmented_sort_values",
    "split_intervals",
    "stable_key_argsort",
]
