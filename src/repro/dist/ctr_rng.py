"""Counter-based (Philox) random streams for whole-machine vectorised draws.

The lockstep engine wants to draw *all* PEs' random decisions of a recursion
level in one vectorised call, while the per-PE reference specification must
see exactly the same values.  Stateful ``np.random.Generator`` streams make
that impossible without a ``for i in range(p)`` loop: each PE's generator
has to be advanced individually, and PR 3 profiling showed that loop as the
largest remaining per-PE Python cost of the flat engine.

A *counter-based* RNG removes the state entirely: every random word is a
pure function ``philox(key, counter)`` of the machine seed and the draw's
logical coordinates.  Here the coordinates are ``(level, pe, index)`` — the
recursion level, the drawing PE and the PE's draw position — so

* one vectorised call over ``(pe, index)`` arrays produces the whole
  machine's draws for a level at once (flat engine),
* the same helper invoked for a single PE produces the identical values
  (reference engine), because nothing other than the coordinates enters the
  function, and
* streams are independent by construction: a draw keyed ``(l, i, j)`` is
  never affected by which other draws have been made (no shared state to
  advance), which is what lets sibling recursion islands batch freely.

The block cipher is Philox-4x32 with 10 rounds (Salmon et al., *Parallel
random numbers: as easy as 1, 2, 3*, SC'11) — the same generator family
``numpy.random.Philox`` uses — implemented directly on uint64 numpy lanes
so a whole array of counters is encrypted per call.
"""

from __future__ import annotations

import numpy as np

# Philox-4x32 round constants (Salmon et al., SC'11).
_PHILOX_M0 = np.uint64(0xD2511F53)
_PHILOX_M1 = np.uint64(0xCD9E8D57)
_PHILOX_W0 = np.uint64(0x9E3779B9)  # golden-ratio Weyl increment
_PHILOX_W1 = np.uint64(0xBB67AE85)  # sqrt(3) - 1 Weyl increment
_MASK32 = np.uint64(0xFFFFFFFF)
_PHILOX_ROUNDS = 10


def _splitmix64(x: int) -> int:
    """One splitmix64 step — spreads nearby machine seeds over the key space."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def philox4x32(
    c0: np.ndarray, c1: np.ndarray, c2: np.ndarray, c3: np.ndarray,
    k0: int, k1: int,
):
    """Philox-4x32-10 block function on vectorised counters.

    ``c0..c3`` are arrays (or scalars) of 32-bit counter words stored in
    uint64 lanes; ``k0``/``k1`` is the 64-bit key split into 32-bit words.
    Returns the four 32-bit output words (in uint64 lanes).  All lanes are
    encrypted independently — one call per array, no Python loop.
    """
    shape = np.broadcast_shapes(
        np.shape(c0), np.shape(c1), np.shape(c2), np.shape(c3)
    )
    # Six reusable uint64 lanes; every round runs in place (out=) so the
    # ten rounds cost zero allocations beyond this scratch.
    x0 = np.empty(shape, dtype=np.uint64)
    np.bitwise_and(np.asarray(c0, dtype=np.uint64), _MASK32, out=x0)
    x1 = np.empty(shape, dtype=np.uint64)
    np.bitwise_and(np.asarray(c1, dtype=np.uint64), _MASK32, out=x1)
    x2 = np.empty(shape, dtype=np.uint64)
    np.bitwise_and(np.asarray(c2, dtype=np.uint64), _MASK32, out=x2)
    x3 = np.empty(shape, dtype=np.uint64)
    np.bitwise_and(np.asarray(c3, dtype=np.uint64), _MASK32, out=x3)
    prod0 = np.empty(shape, dtype=np.uint64)
    prod1 = np.empty(shape, dtype=np.uint64)
    key0 = np.uint64(k0 & 0xFFFFFFFF)
    key1 = np.uint64(k1 & 0xFFFFFFFF)
    for _ in range(_PHILOX_ROUNDS):
        np.multiply(_PHILOX_M0, x0, out=prod0)  # full 32x32 -> 64 bit product
        np.multiply(_PHILOX_M1, x2, out=prod1)
        # x0/x2 are consumed by the products; rebuild them from the other
        # half's high word, then turn the products into the new low words.
        np.right_shift(prod1, np.uint64(32), out=x0)
        np.bitwise_xor(x0, x1, out=x0)
        np.bitwise_xor(x0, key0, out=x0)
        np.right_shift(prod0, np.uint64(32), out=x2)
        np.bitwise_xor(x2, x3, out=x2)
        np.bitwise_xor(x2, key1, out=x2)
        np.bitwise_and(prod1, _MASK32, out=x1)
        np.bitwise_and(prod0, _MASK32, out=x3)
        key0 = (key0 + _PHILOX_W0) & _MASK32
        key1 = (key1 + _PHILOX_W1) & _MASK32
    return x0, x1, x2, x3


class CounterRNG:
    """Stateless Philox streams keyed by ``(machine seed, level, pe)``.

    Every 64-bit random word is ``philox(key(seed), counter(level, pe, i))``
    where ``i`` is the draw index within the ``(level, pe)`` stream.  The
    object carries no mutable state: draws are reproducible regardless of
    call order, machine resets, or how draws are batched across PEs — the
    properties the lockstep sampling path relies on.

    Parameters
    ----------
    seed:
        The machine seed.  It is diffused through splitmix64 into the
        Philox key so that adjacent seeds yield unrelated streams.
    """

    __slots__ = ("seed", "_k0", "_k1")

    def __init__(self, seed: int):
        self.seed = int(seed)
        mixed = _splitmix64(self.seed)
        self._k0 = mixed & 0xFFFFFFFF
        self._k1 = mixed >> 32

    # ------------------------------------------------------------------
    def blocks(self, level, pe, index):
        """All four 32-bit words of Philox block ``index`` of ``(level, pe)``.

        ``level``, ``pe`` and ``index`` broadcast against each other; the
        result is four uint64 arrays holding one 32-bit word each.  Callers
        that need many small draws per stream (the sampling path) consume
        all four words per block — a quarter of the Philox work of one
        block per draw.
        """
        level = np.asarray(level, dtype=np.uint64)
        pe = np.asarray(pe, dtype=np.uint64)
        index = np.asarray(index, dtype=np.uint64)
        return philox4x32(
            index & _MASK32,
            index >> np.uint64(32),
            pe & _MASK32,
            (pe >> np.uint64(32)) ^ (level & _MASK32),
            self._k0,
            self._k1,
        )

    def words(self, level, pe, index) -> np.ndarray:
        """Uniform 64-bit words for draw ``index`` of stream ``(level, pe)``.

        ``level``, ``pe`` and ``index`` broadcast against each other; the
        result is a uint64 array of the broadcast shape (or a 0-d array for
        all-scalar inputs).
        """
        y0, y1, _, _ = self.blocks(level, pe, index)
        return (y1 << np.uint64(32)) | y0

    def integers(self, level, pe, index, bound) -> np.ndarray:
        """Uniform integers in ``[0, bound)`` (per-element bounds allowed).

        Reduction is by modulo; for the simulator's use (sample positions in
        local arrays of at most a few million elements) the bias is below
        ``2**-40`` and irrelevant.  All ``bound`` entries must be positive.
        """
        bound = np.asarray(bound, dtype=np.uint64)
        if bound.size and int(bound.min(initial=1)) < 1:
            raise ValueError("bounds must be positive")
        return (self.words(level, pe, index) % bound).astype(np.int64)

    def uniforms(self, level, pe, index) -> np.ndarray:
        """Uniform float64 values in ``[0, 1)`` (53-bit mantissas)."""
        return (self.words(level, pe, index) >> np.uint64(11)) * (2.0 ** -53)
