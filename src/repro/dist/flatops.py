"""Vectorised kernels for the flat execution engine.

These helpers are the numpy building blocks the :class:`~repro.dist.array.
DistArray` engine is made of.  They contain no simulator state and no cost
accounting — they are pure data transformations, shared by the flat ports of
the exchange, delivery, partitioning and merging steps.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Segment index of every element for a CSR ``offsets`` vector.

    ``offsets`` has ``p + 1`` entries; the result has ``offsets[-1]``
    entries, with value ``i`` repeated ``offsets[i+1] - offsets[i]`` times.
    Computed as a cumulative sum of boundary markers, which is considerably
    faster than ``np.repeat`` for large element counts.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64)
    marks = np.zeros(total, dtype=np.int64)
    interior = offsets[1:-1]
    interior = interior[interior < total]
    np.add.at(marks, interior, 1)
    return np.cumsum(marks, out=marks)


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Index array gathering the ranges ``[starts[k], starts[k]+lengths[k])``.

    The returned int64 array has ``lengths.sum()`` entries and enumerates all
    ranges back to back, so ``buffer[concat_ranges(s, l)]`` concatenates the
    ranges without any Python-level loop.  Zero-length ranges are skipped.
    Built as one cumulative sum of per-position steps (step 1 inside a
    range, a jump at every range boundary).
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have the same shape")
    nonzero = lengths > 0
    if not nonzero.all():
        starts = starts[nonzero]
        lengths = lengths[nonzero]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    step = np.ones(total, dtype=np.int64)
    step[0] = starts[0]
    if starts.size > 1:
        bounds = np.cumsum(lengths[:-1])
        step[bounds] = starts[1:] - starts[:-1] - lengths[:-1] + 1
    return np.cumsum(step, out=step)


def stable_key_argsort(key: np.ndarray, key_bound: int) -> np.ndarray:
    """Stable argsort of non-negative integer keys smaller than ``key_bound``.

    numpy's stable sort is a radix sort only for (u)int8/16 — an order of
    magnitude faster than the comparison sort used for wider integers — so
    the key is narrowed to ``uint16`` whenever the bound allows.  The
    resulting permutation is identical either way.
    """
    key = np.asarray(key)
    if 0 <= key_bound <= 2 ** 16:
        key = key.astype(np.uint16, copy=False)
    elif 0 <= key_bound < 2 ** 31:
        key = key.astype(np.int32, copy=False)
    return np.argsort(key, kind="stable")


def stable_two_key_argsort(
    major: np.ndarray, minor: np.ndarray, major_bound: int, minor_bound: int
) -> np.ndarray:
    """Stable argsort by ``(major, minor)`` pairs of small non-negative ints.

    When the combined key range fits 16 bits a single radix argsort is used;
    otherwise an LSD two-pass radix (stable sort by minor, then by major)
    keeps both passes in the fast 16-bit path.  Identical to a stable
    argsort of ``major * minor_bound + minor``.
    """
    if 0 <= major_bound * minor_bound <= 2 ** 16:
        return stable_key_argsort(
            major * minor_bound + minor, major_bound * minor_bound
        )
    if major_bound <= 2 ** 16 and minor_bound <= 2 ** 16:
        order = np.argsort(minor.astype(np.uint16, copy=False), kind="stable")
        order2 = np.argsort(
            major.astype(np.uint16, copy=False)[order], kind="stable"
        )
        return order[order2]
    return stable_key_argsort(major * minor_bound + minor, major_bound * minor_bound)


def segmented_sort_values(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Stable-sort every segment of a CSR layout independently.

    Byte-identical to ``np.sort(segment, kind="stable")`` applied per
    segment.  For reasonably sized segments this is done with in-place
    sorts of the segment slices (numpy's comparison sort on wide dtypes is
    much faster than a whole-array ``lexsort``); very short segments fall
    back to one stable argsort keyed by the segment id.
    """
    values = np.asarray(values)
    if values.size == 0:
        return values.copy()
    p = int(offsets.size) - 1
    if values.size >= 4 * p:
        out = values.copy()
        for i in range(p):
            out[offsets[i]:offsets[i + 1]].sort(kind="stable")
        return out
    seg = segment_ids(offsets)
    if p < 2 ** 31:
        seg = seg.astype(np.int32, copy=False)
    order = np.lexsort((values, seg))
    return values[order]


def split_intervals(
    bounds: np.ndarray, cuts: np.ndarray, total: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split the position range ``[0, total)`` at piece bounds and cut points.

    ``bounds`` are the *piece* boundaries (``len(pieces) + 1`` entries,
    starting at 0 and ending at ``total``); ``cuts`` are additional cut
    positions (e.g. destination-PE capacity boundaries).  The range is split
    into maximal intervals that cross neither kind of boundary — exactly the
    messages a prefix-sum data delivery produces when pieces are laid out
    consecutively over destination slots.

    Returns ``(piece_idx, start, length, interval_start)`` per interval, in
    ascending position order: the index of the piece the interval belongs
    to, the offset *within* that piece, the interval length, and the
    absolute start position (used to derive the destination).
    """
    bounds = np.asarray(bounds, dtype=np.int64)
    if total <= 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, e.copy(), e.copy()
    cuts = np.asarray(cuts, dtype=np.int64)
    cuts = cuts[(cuts > 0) & (cuts < total)]
    points = np.unique(np.concatenate([bounds, cuts, [0, total]]))
    points = points[(points >= 0) & (points <= total)]
    starts_abs = points[:-1]
    lengths = np.diff(points)
    keep = lengths > 0
    starts_abs = starts_abs[keep]
    lengths = lengths[keep]
    piece_idx = np.searchsorted(bounds, starts_abs, side="right") - 1
    start_in_piece = starts_abs - bounds[piece_idx]
    return piece_idx, start_in_piece, lengths, starts_abs
