"""Vectorised kernels for the flat execution engine.

These helpers are the numpy building blocks the :class:`~repro.dist.array.
DistArray` engine is made of.  They contain no simulator state and no cost
accounting — they are pure data transformations, shared by the flat ports of
the exchange, delivery, partitioning and merging steps.

The element-scale kernels (segmented sorts and searches, histograms, stable
radix argsorts, gathers) are *dispatched*: the public names forward to the
active :class:`~repro.dist.backend.base.KernelBackend`, whose default — the
``*_numpy`` reference implementations in this module, wrapped as
:class:`~repro.dist.backend.numpy_backend.NumpyBackend` — is the
single-process numpy engine.  ``REPRO_BACKEND=sharedmem`` (or
``run_on_machine(..., backend=...)``) swaps in the shared-memory
multiprocess backend; every backend is byte-identical to the reference, so
the choice never changes engine output.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.dist.workspace import get_arena


def segment_ids(offsets: np.ndarray, arena=None) -> np.ndarray:
    """Segment index of every element for a CSR ``offsets`` vector.

    ``offsets`` has ``p + 1`` entries; the result has ``offsets[-1]``
    entries, with value ``i`` repeated ``offsets[i+1] - offsets[i]`` times.
    Computed as a cumulative sum of boundary markers, which is considerably
    faster than ``np.repeat`` for large element counts.

    When ``arena`` is given the result is checked out of it — the caller
    owns the buffer and must ``recycle`` it once the ids are dead.

    Deliberately int64: the ids index offset tables (``key_offsets[seg]``)
    and feed ``astype`` widenings in the composed-key sorts, and numpy
    upcasts any non-``intp`` integer index array on every use — measured at
    p=4096 (two-level AMS) an int32 variant cost ~15% total wall.  Keys are
    narrowed where it actually pays, at the radix-sort boundary
    (:func:`stable_key_argsort_numpy`), where the one narrowing copy buys an
    order-of-magnitude faster sort.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64)
    if arena is None:
        marks = np.zeros(total, dtype=np.int64)
    else:
        marks = arena.zeros(total, np.int64)
    interior = offsets[1:-1]
    interior = interior[interior < total]
    np.add.at(marks, interior, 1)
    return np.cumsum(marks, out=marks)


_MALLOC_REUSE_DONE = False


def enable_malloc_reuse() -> bool:
    """Keep the engine's large scratch buffers reusable across numpy calls.

    The flat engine allocates and drops hundreds of element-scale
    temporaries (hundreds of MB each at ``p = 2^15``) per run.  With
    glibc's defaults every one of them is a fresh ``mmap`` whose pages
    fault in on first touch and are returned on free — measured at ~60% of
    the cost of an allocating whole-array pass.  Raising the malloc mmap
    and trim thresholds keeps those blocks on the heap, where freed
    buffers are handed straight back to the next allocation with their
    pages still mapped (a whole-process workspace pool, with the allocator
    doing the bookkeeping).  Idempotent; returns ``False`` on platforms
    without glibc ``mallopt`` (then it is a no-op).  The trade-off is that
    the process holds on to its high-water scratch memory, which is the
    right call for simulation workloads.
    """
    global _MALLOC_REUSE_DONE
    if _MALLOC_REUSE_DONE:
        return True
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        libc.mallopt(-3, (1 << 31) - 1)  # M_MMAP_THRESHOLD
        libc.mallopt(-1, (1 << 31) - 1)  # M_TRIM_THRESHOLD
    except (OSError, AttributeError):
        return False
    _MALLOC_REUSE_DONE = True
    return True


def cached_arange(n: int, dtype=np.int64) -> np.ndarray:
    """Read-only view of ``np.arange(n, dtype=dtype)`` from the workspace arena.

    The flat engine builds ``0..total`` index ramps on every level
    (:func:`concat_ranges`, padded sorts); the ramp's contents never change,
    so one shared buffer per dtype — grown geometrically, marked read-only
    so a mutating caller fails loudly instead of corrupting it — replaces
    the per-call fills.  Callers that need a writable ramp must copy (any
    arithmetic on the view allocates a fresh array anyway).  The ramp lives
    in the process :class:`~repro.dist.workspace.WorkspaceArena`, so
    ``get_arena().release()`` (or ``SimulatedMachine.release_workspace()``)
    actually sheds it — the former module-level cache pinned the high-water
    ramp for the life of the process.
    """
    return get_arena().arange(n, dtype)


def concat_ranges(
    starts: np.ndarray, lengths: np.ndarray, arena=None
) -> np.ndarray:
    """Index array gathering the ranges ``[starts[k], starts[k]+lengths[k])``.

    The returned array has ``lengths.sum()`` entries and enumerates all
    ranges back to back, so ``buffer[concat_ranges(s, l)]`` concatenates the
    ranges without any Python-level loop.  Zero-length ranges are skipped.

    Without ``arena``, built as ``arange(total)`` plus a per-range shift
    broadcast with ``np.repeat`` — two sequential passes over the output,
    with the cumsum confined to the (short) per-range vector.  With
    ``arena``, the result is checked out of the workspace (caller must
    ``recycle`` it) and built allocation-free: the output is seeded with
    ones, per-range shift *deltas* are scattered onto the range starts
    (``np.add.at`` accumulates duplicates, so zero-length ranges telescope
    correctly), and one in-place cumsum produces the same int64 values.

    Deliberately int64 (``intp``): the result exists to fancy-index value
    buffers, and numpy converts any non-``intp`` integer index array on
    every indexing use — an int32 variant (halved build traffic, but one
    upcast pass per gather/scatter) measured ~25% slower total wall at
    p=4096 two-level AMS, concentrated in data delivery.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have the same shape")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Position k of range i maps to starts[i] + k; relative to the flat
    # output position this is a constant shift per range.
    excl = np.cumsum(lengths) - lengths
    shift = starts - excl
    if arena is None:
        return cached_arange(total) + np.repeat(shift, lengths)
    out = arena.full(total, 1, np.int64)
    out[0] = shift[0]
    pos = excl[1:]
    keep = pos < total  # trailing zero-length ranges start past the end
    np.add.at(out, pos[keep], np.diff(shift)[keep])
    return np.cumsum(out, out=out)


def repeat_add(
    base: np.ndarray, lengths: np.ndarray, addend: np.ndarray, arena
) -> np.ndarray:
    """``np.repeat(base, lengths) + addend`` built in one workspace buffer.

    The level executors broadcast a per-segment base onto the element axis
    and add a per-element key four times per level (island bucket keys,
    piece keys, destination planes) — each time allocating the repeat *and*
    the sum.  This builds the repeat by the same telescoping
    scatter-then-cumsum as :func:`concat_ranges` (exact for any integer
    dtype: the scattered deltas reconstruct the values under two's
    complement even if an intermediate wraps) directly in a checked-out
    buffer of the promoted dtype and adds ``addend`` in place — zero fresh
    allocations, byte-identical values.  The caller owns the result and
    must ``recycle`` it.
    """
    base = np.asarray(base)
    lengths = np.asarray(lengths, dtype=np.int64)
    addend = np.asarray(addend)
    total = int(lengths.sum())
    dt = np.result_type(base, addend)
    out = arena.empty(total, dt)
    if total == 0:
        return out
    vals = base.astype(dt, copy=False)
    out.fill(0)
    out[0] = vals[0]
    excl = np.cumsum(lengths) - lengths
    pos = excl[1:]
    keep = pos < total  # trailing zero-length segments start past the end
    np.add.at(out, pos[keep], np.diff(vals)[keep])
    np.cumsum(out, out=out)
    out += addend
    return out


def stable_key_argsort_numpy(key: np.ndarray, key_bound: int) -> np.ndarray:
    """Reference implementation of :func:`stable_key_argsort`.

    numpy's stable sort is a radix sort only for (u)int8/16 — an order of
    magnitude faster than the comparison sort used for wider integers — so
    the key is narrowed to ``uint16`` whenever the bound allows.  The
    resulting permutation is identical either way.
    """
    key = np.asarray(key)
    if 0 <= key_bound <= 2 ** 8:
        narrow = np.uint8
    elif 0 <= key_bound <= 2 ** 16:
        narrow = np.uint16
    elif 0 <= key_bound < 2 ** 31:
        narrow = np.int32
    else:
        narrow = None
    if narrow is None or key.dtype == narrow or key.ndim != 1:
        if narrow is not None:
            key = key.astype(narrow, copy=False)
        return np.argsort(key, kind="stable")
    # The narrowing copy is a pure scratch (the permutation escapes, the
    # narrowed key does not) — check it out of the workspace arena instead
    # of allocating fresh per call.
    ws = get_arena()
    scratch = ws.empty(key.size, narrow)
    np.copyto(scratch, key, casting="unsafe")
    order = np.argsort(scratch, kind="stable")
    ws.recycle(scratch)
    return order


def stable_two_key_argsort_numpy(
    major: np.ndarray, minor: np.ndarray, major_bound: int, minor_bound: int
) -> np.ndarray:
    """Reference implementation of :func:`stable_two_key_argsort`.

    When the combined key range fits 16 bits a single radix argsort is used;
    otherwise an LSD two-pass radix (stable sort by minor, then by major)
    keeps both passes in the fast 16-bit path.  Identical to a stable
    argsort of ``major * minor_bound + minor``.
    """
    ws = get_arena()
    if 0 <= major_bound * minor_bound <= 2 ** 16:
        # Composed key is a pure scratch; build it in the workspace.  Widen
        # into the int64 buffer *first* so the arithmetic runs in int64 —
        # a ufunc with narrow inputs and an int64 ``out`` would compute in
        # the narrow loop and cast after, which is not the same thing.
        key = ws.empty(np.asarray(major).size, np.int64)
        np.copyto(key, major, casting="unsafe")
        key *= minor_bound
        key += minor
        order = stable_key_argsort_numpy(key, major_bound * minor_bound)
        ws.recycle(key)
        return order
    if major_bound <= 2 ** 16 and minor_bound <= 2 ** 16:
        minor16 = ws.empty(np.asarray(minor).size, np.uint16)
        np.copyto(minor16, minor, casting="unsafe")
        order = np.argsort(minor16, kind="stable")
        ws.recycle(minor16)
        major16 = ws.empty(np.asarray(major).size, np.uint16)
        np.copyto(major16, major, casting="unsafe")
        permuted = ws.empty(major16.size, np.uint16)
        np.take(major16, order, out=permuted)
        order2 = np.argsort(permuted, kind="stable")
        ws.recycle(major16, permuted)
        return order[order2]
    # Composed int64 keys: widen explicitly — narrow ids (int32 segment
    # ids) times a python-int bound would stay int32 under NEP 50 and
    # overflow for bounds this branch exists for.
    key = ws.empty(np.asarray(major).size, np.int64)
    np.copyto(key, major, casting="unsafe")
    key *= minor_bound
    key += minor
    order = stable_key_argsort_numpy(key, major_bound * minor_bound)
    ws.recycle(key)
    return order


def _composed_radix_segment_sort(
    values: np.ndarray, offsets: np.ndarray, p: int
) -> Union[np.ndarray, None]:
    """Key-composed radix path of :func:`segmented_sort_values`.

    When the values are integers of range ``R`` and ``p * R`` fits a 64-bit
    key, the per-segment sort is one whole-array ``np.sort`` of the composed
    key ``(segment << value_bits) | (value - vmin)``: the composed order is
    exactly (segment, value), and decomposing restores the values sorted
    within each segment.  One C-speed sort instead of ``p`` Python-level
    segment sorts — the win of the flat engine's large-``p``/short-segment
    regime whenever the value range allows (narrow keys, ranks, bucket
    ids).  Returns ``None`` when the composition does not fit.
    """
    if values.dtype.kind not in "iu":
        return None
    vmin = int(values.min())
    vmax = int(values.max())
    if vmax > np.iinfo(np.int64).max:
        return None  # uint64 beyond int64: the int64 key space cannot hold it
    value_bits = max(1, int(vmax - vmin).bit_length())
    seg_bits = int(p - 1).bit_length()
    if value_bits + seg_bits > 63:
        return None
    ws = get_arena()
    total = values.size
    # When the output dtype is int64 the composed key *becomes* the result
    # (``astype(copy=False)`` escapes it), so it must be a fresh
    # allocation; narrower dtypes decompose into a fresh copy anyway, so
    # the key is a pure workspace scratch.
    escapes = values.dtype == np.int64
    key = np.empty(total, dtype=np.int64) if escapes else ws.empty(total, np.int64)
    seg = segment_ids(offsets, ws)
    np.left_shift(seg, value_bits, out=key)
    ws.recycle(seg)
    tmp = ws.empty(total, np.int64)
    np.copyto(tmp, values, casting="unsafe")
    if vmin != 0:
        tmp -= vmin
    np.bitwise_or(key, tmp, out=key)
    ws.recycle(tmp)
    key.sort()
    key &= np.int64((1 << value_bits) - 1)
    key += vmin
    out = key.astype(values.dtype, copy=False)
    if not escapes:
        ws.recycle(key)
    return out


def _padded_segment_sort(
    values: np.ndarray, offsets: np.ndarray, p: int
) -> np.ndarray:
    """Pad segments to a rectangle and sort all rows with one ``np.sort``.

    Every segment becomes one row of a ``(p, max_len)`` matrix, padded with
    the dtype's maximum so the pad elements sink to the row ends after an
    ascending ``np.sort(axis=1)``; stripping the padding leaves each
    segment's values sorted.  (Equal-to-max real values are
    indistinguishable from pads in *value*, which is all a value sort
    returns — the truncation keeps exactly ``len_i`` entries, so the output
    is still the sorted segment.)  One vectorised row sort replaces ``p``
    Python-level slice sorts; used when segments are short and near-uniform
    so the padding overhead stays bounded.
    """
    sizes = np.diff(offsets)
    max_len = int(sizes.max())
    if np.issubdtype(values.dtype, np.floating):
        pad = np.inf
    else:
        pad = np.iinfo(values.dtype).max
    ws = get_arena()
    # The (p, max_len) rectangle and its flat index are level-local
    # scratch — both come from the workspace; only the final gather (the
    # sorted values) escapes as a fresh array.
    flat = ws.full(p * max_len, pad, values.dtype)
    mat = flat.reshape(p, max_len)
    # Each segment occupies its row's prefix; one flat index addresses the
    # prefixes for both the scatter in and the gather out.
    flat_idx = concat_ranges(
        np.arange(p, dtype=np.int64) * max_len, sizes, arena=ws
    )
    flat[flat_idx] = values
    mat.sort(axis=1)
    out = flat[flat_idx]
    ws.recycle(flat, flat_idx)
    return out


def segmented_sort_values_numpy(
    values: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Reference implementation of :func:`segmented_sort_values`.

    Byte-identical to ``np.sort(segment, kind="stable")`` applied per
    segment (for plain values a sort's output does not depend on the sort's
    stability, so any correct per-segment ordering qualifies).  Three
    strategies cover the engine's regimes:

    * few segments (or long segments): in-place sorts of the segment slices,
    * many short integer segments with a bounded value range: one
      whole-array radix-style sort of composed ``(segment, value)`` keys
      (:func:`_composed_radix_segment_sort`),
    * many short near-uniform segments with wide values (the post-delivery
      layout at large ``p``): one padded rectangular ``np.sort(axis=1)``
      (:func:`_padded_segment_sort`),

    falling back to a stable argsort keyed by segment id for extremely
    short ragged segments.
    """
    values = np.asarray(values)
    if values.size == 0:
        return values.copy()
    p = int(offsets.size) - 1
    sizes = np.diff(offsets)
    max_len = int(sizes.max())
    if p >= 64 and values.size >= 4 * p:
        composed = _composed_radix_segment_sort(values, offsets, p)
        if composed is not None:
            return composed
        if max_len * p <= 2 * values.size + 4 * p and not (
            # NaNs sort *after* the inf padding, so the padded prefix
            # gather would return pads instead of the NaNs — fall back.
            values.dtype.kind == "f" and bool(np.isnan(values).any())
        ):
            return _padded_segment_sort(values, offsets, p)
    if values.size >= 4 * p:
        out = values.copy()
        for i in range(p):
            out[offsets[i]:offsets[i + 1]].sort(kind="stable")
        return out
    seg = segment_ids(offsets)
    if p < 2 ** 31:
        seg = seg.astype(np.int32, copy=False)
    order = np.lexsort((values, seg))
    return values[order]


def segmented_searchsorted_numpy(
    values: np.ndarray,
    offsets: np.ndarray,
    queries: np.ndarray,
    query_seg: np.ndarray,
    side: Union[str, np.ndarray] = "left",
    lo: np.ndarray = None,
    hi: np.ndarray = None,
) -> np.ndarray:
    """Reference implementation of :func:`segmented_searchsorted`.

    ``values``/``offsets`` form a CSR layout whose segments are each sorted
    in non-decreasing order; query ``k`` is looked up in segment
    ``query_seg[k]``.  The result equals
    ``np.searchsorted(values[offsets[s]:offsets[s+1]], queries[k], side)``
    per query (positions are relative to the segment start), but all queries
    advance together through one segmented binary search —
    ``O(log max_segment_size)`` whole-batch vectorised bisection steps
    instead of a Python loop over segments.

    ``side`` is ``'left'``, ``'right'``, or a boolean array per query
    (``True`` = right); the per-query form is the *two-sided* search the
    multisequence selection uses, where the side depends on the position of
    the queried segment relative to the pivot owner (Appendix D
    tie-breaking).

    ``lo``/``hi`` optionally restrict query ``k`` to the half-open window
    ``[lo[k], hi[k])`` of its segment (positions relative to the segment
    start).  Because the segment is sorted the result — clamped into
    ``[lo[k], hi[k]]`` — is identical to clipping the full-segment position,
    while the bisection only pays for the window size.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    queries = np.asarray(queries)
    query_seg = np.asarray(query_seg, dtype=np.int64)
    if queries.shape != query_seg.shape or queries.ndim != 1:
        raise ValueError("queries and query_seg must be equal-length 1-D arrays")
    if query_seg.size and (
        query_seg.min(initial=0) < 0 or query_seg.max(initial=0) >= offsets.size - 1
    ):
        raise IndexError("query segment index out of range")
    if isinstance(side, str):
        if side not in ("left", "right"):
            raise ValueError("side must be 'left', 'right', or a boolean mask")
        right = np.full(queries.shape, side == "right", dtype=bool)
    else:
        right = np.asarray(side, dtype=bool)
        if right.shape != queries.shape:
            raise ValueError("per-query side mask must match the query shape")
    base = offsets[query_seg]
    if lo is None:
        cur_lo = base.copy()
    else:
        cur_lo = base + np.asarray(lo, dtype=np.int64)
    if hi is None:
        cur_hi = offsets[query_seg + 1].copy()
    else:
        cur_hi = base + np.asarray(hi, dtype=np.int64)
    if cur_lo.size and (
        np.any(cur_lo < base) or np.any(cur_hi > offsets[query_seg + 1])
        or np.any(cur_lo > cur_hi)
    ):
        raise IndexError("search window out of segment range")
    while True:
        active = cur_lo < cur_hi
        if not active.any():
            break
        mid = (cur_lo + cur_hi) >> 1
        probe = values[np.where(active, mid, 0)]
        go_right = np.where(right, probe <= queries, probe < queries) & active
        cur_lo = np.where(go_right, mid + 1, cur_lo)
        cur_hi = np.where(active & ~go_right, mid, cur_hi)
    return cur_lo - base


def blockwise_searchsorted_numpy(
    values: np.ndarray,
    offsets: np.ndarray,
    queries: np.ndarray,
    query_offsets: np.ndarray,
    side: str = "left",
) -> np.ndarray:
    """Reference implementation of :func:`blockwise_searchsorted`.

    Segment ``s`` of the (individually sorted) CSR layout
    ``values``/``offsets`` is probed with the query block
    ``queries[query_offsets[s]:query_offsets[s+1]]``; positions are relative
    to the segment start.  Semantically identical to
    :func:`segmented_searchsorted` with ``query_seg`` expanded from
    ``query_offsets``, but integer batches with several segments run through
    one shared radix prefix table over the whole ``(segment, cell)`` grid
    (:func:`_bucketize_batched`) and the rest fall back to one C-speed
    ``np.searchsorted`` per block — so a whole recursion level's bucketing
    is a handful of whole-batch numpy calls regardless of the island count.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    queries = np.asarray(queries)
    query_offsets = np.asarray(query_offsets, dtype=np.int64)
    if query_offsets.size != offsets.size:
        raise ValueError("need exactly one query block per segment")
    if int(query_offsets[-1]) != queries.size:
        raise ValueError("query_offsets must cover the query array")
    if (
        offsets.size >= 2
        and queries.size >= 4096
        and values.size
        and queries.dtype.kind in "iu"
        and values.dtype.kind in "iu"
    ):
        out = _bucketize_batched(values, offsets, queries, query_offsets, side)
        if out is not None:
            return out
    out = np.empty(queries.size, dtype=np.int64)
    for s in range(offsets.size - 1):
        qlo, qhi = int(query_offsets[s]), int(query_offsets[s + 1])
        if qhi == qlo:
            continue
        seg = values[offsets[s]:offsets[s + 1]]
        if seg.size == 0:
            out[qlo:qhi] = 0
        elif qhi - qlo >= 4096 and seg.size >= 16 and queries.dtype.kind in "iu":
            out[qlo:qhi] = _bucketize_with_table(seg, queries[qlo:qhi], side)
        else:
            out[qlo:qhi] = np.searchsorted(seg, queries[qlo:qhi], side=side)
    return out


def _bucketize_batched(
    values: np.ndarray,
    offsets: np.ndarray,
    queries: np.ndarray,
    query_offsets: np.ndarray,
    side: str,
) -> Union[np.ndarray, None]:
    """All segments of a :func:`blockwise_searchsorted` call in one shot.

    The boundary range of *all* segments combined is cut into ``2**bits``
    equal cells (a radix on the top query bits, as in
    :func:`_bucketize_with_table`) and one ``(segment, cell)`` table of
    result ranges is built from two bincounts over the concatenated
    boundaries — no per-segment Python.  Queries in pure cells (no boundary
    of *their own* segment inside) resolve with one table gather; queries in
    mixed cells finish with a windowed segmented bisection whose window is
    the table's result range (almost always one or two candidate
    boundaries).  Output is byte-identical to ``np.searchsorted`` per
    segment.  Returns ``None`` when the value range or table size makes the
    shared grid unattractive.
    """
    nseg = int(offsets.size) - 1
    if values.dtype.kind == "u" and int(values.max()) >= 2 ** 62:
        return None
    vi = values.astype(np.int64, copy=False)
    if not -(2 ** 62) < int(vi.min()) <= int(vi.max()) < 2 ** 62:
        return None
    if queries.size and queries.dtype.kind == "u" and \
            int(queries.max()) >= 2 ** 63:
        return None
    qi = queries.astype(np.int64, copy=False)

    # One radix grid *per segment*: each segment's boundary range is cut
    # into its own ``2**bits`` cells.  A shared global grid would be blind
    # to skew — after one routing level every island owns a narrow slice of
    # the key space, so all its boundaries would collapse into a handful of
    # global cells and almost every query would be mixed.
    seg_sizes = np.diff(offsets)
    max_size = int(seg_sizes.max())
    if max_size >= 2 ** 31:
        return None
    has = seg_sizes > 0
    lo_k = np.zeros(nseg, dtype=np.int64)
    hi_k = np.zeros(nseg, dtype=np.int64)
    lo_k[has] = vi[offsets[:-1][has]]
    hi_k[has] = vi[offsets[1:][has] - 1]
    nq = int(queries.size)
    # ~32 cells per boundary keeps the mixed-query fraction around 3%; the
    # cap bounds the table build (≈5 passes over nseg << bits) to a
    # fraction of the per-query work.
    bits = min(16, max(8, max_size.bit_length() + 5))
    while bits > 8 and (nseg << bits) > max(1 << 22, nq >> 2):
        bits -= 1
    if (nseg << bits) > (1 << 24):
        return None
    n_cells = 1 << bits
    # Two sentinel cells per segment: cell 0 swallows every query below the
    # segment's smallest boundary (result range [0, 0]) and the cells past
    # the boundary span answer with the full count, so out-of-range queries
    # need no masks of their own.
    nc2 = n_cells + 2
    shift_k = np.maximum(0, _bit_length_i64(hi_k - lo_k) - bits)

    # (segment, cell) histograms of the boundaries: prefix[s, c] counts the
    # segment's boundaries in cells < c; eq_base / eq_top count boundaries
    # exactly at a cell's lowest / highest covered value.
    seg_of_spl = np.repeat(np.arange(nseg, dtype=np.int64), seg_sizes)
    spl_rel = vi - lo_k[seg_of_spl]
    shift_spl = shift_k[seg_of_spl]
    flat_spl = seg_of_spl * nc2 + ((spl_rel >> shift_spl) + 1)
    table_n = nseg * nc2
    prefix = np.zeros((nseg, nc2 + 1), dtype=np.int64)
    np.cumsum(
        np.bincount(flat_spl, minlength=table_n).reshape(nseg, nc2),
        axis=1, out=prefix[:, 1:],
    )
    low_bits = spl_rel & ((np.int64(1) << shift_spl) - 1)
    eq_base = np.bincount(
        flat_spl[low_bits == 0], minlength=table_n
    ).reshape(nseg, nc2)
    if side == "right":
        lo_tab = prefix[:, :-1] + eq_base
        hi_tab = prefix[:, 1:]
    else:
        eq_top = np.bincount(
            flat_spl[low_bits == (np.int64(1) << shift_spl) - 1],
            minlength=table_n,
        ).reshape(nseg, nc2)
        lo_tab = prefix[:, :-1]
        hi_tab = prefix[:, 1:] - eq_top
    # Pure cells store their result directly; mixed cells store the result
    # window encoded below zero, so one gather answers pure queries with no
    # unpacking pass and the sign bit alone flags the (rare) mixed ones.
    win_bits = max(1, max_size.bit_length())
    win = hi_tab - lo_tab
    packed = np.where(
        win == 0, lo_tab, -((lo_tab << np.int64(win_bits)) | win) - 1
    ).reshape(-1)

    s_max = int(shift_k.max(initial=0))
    lo_v = int(lo_k[has].min()) if has.any() else 0
    hi_v = int(hi_k[has].max()) if has.any() else 0
    if (hi_v + 1) - (lo_v - (1 << s_max)) >= 1 << 63:
        return None  # cell arithmetic could overflow; per-segment fallback

    # Query side: one light pass per segment over its contiguous block —
    # scalar clip into [lo-1, hi+1] (preserving each query's below/above
    # classification), the folded "+1" interior-cell subtrahend
    # ((x + 2**s) >> s == (x >> s) + 1 exactly, so the shifted result lands
    # in [0, n_cells + 1] with no second clip), and one gather from the
    # segment's table row.  The blocks stay cache-resident, the loop body
    # is branch-free numpy, and the table/mixed machinery around it is
    # whole-batch.
    res = np.empty(queries.size, dtype=np.int64)
    lo2 = lo_k - (np.int64(1) << shift_k.astype(np.int64))
    wb = np.int64(win_bits)
    wmask = np.int64((1 << win_bits) - 1)
    right = side == "right"
    for s in range(nseg):
        a, b = int(query_offsets[s]), int(query_offsets[s + 1])
        if b == a:
            continue
        cell = np.clip(qi[a:b], int(lo_k[s]) - 1, int(hi_k[s]) + 1)
        cell -= lo2[s]
        cell >>= shift_k[s]
        cell += np.int64(s * nc2)
        pk = packed[cell]
        res[a:b] = pk
        neg = np.flatnonzero(pk < 0)
        if neg.size:
            enc = -(pk[neg] + 1)
            lo_w = enc >> wb
            base = np.int64(offsets[s])
            res[a + neg] = _windowed_bisect(
                values, queries[a:b][neg], base + lo_w,
                base + lo_w + (enc & wmask), right=right,
            ) - base
    return res


def _windowed_bisect(
    values: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    right: bool,
) -> np.ndarray:
    """Insertion positions of queries in per-query windows of a flat buffer.

    Validation-free whole-batch bisection over the absolute windows
    ``[lo[k], hi[k]]`` — every window must already contain its query's true
    insertion position (the mixed-cell contract of the radix tables).
    """
    cur_lo = lo.copy()
    cur_hi = hi.copy()
    while True:
        active = cur_lo < cur_hi
        if not active.any():
            break
        mid = (cur_lo + cur_hi) >> 1
        probe = values[np.where(active, mid, 0)]
        go = probe <= queries if right else probe < queries
        go &= active
        cur_lo = np.where(go, mid + 1, cur_lo)
        cur_hi = np.where(active & ~go, mid, cur_hi)
    return cur_lo


def _bit_length_i64(x: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for non-negative int64 values."""
    r = np.zeros(x.shape, dtype=np.int64)
    v = x.astype(np.int64, copy=True)
    for s in (32, 16, 8, 4, 2, 1):
        m = v >= (np.int64(1) << s)
        r[m] += s
        v[m] >>= s
    return r + (v > 0)


def _bucketize_with_table(
    sorted_vals: np.ndarray, queries: np.ndarray, side: str
) -> np.ndarray:
    """``np.searchsorted`` accelerated by a radix prefix table.

    For *many* integer queries against *few* sorted boundaries, a binary
    search spends most of its time in unpredictable branches.  Instead the
    boundary range ``[lo, hi]`` is cut into ``B = 2**bits`` equal cells (a
    radix on the top query bits): a precomputed table gives, per cell, the
    lowest and highest possible search result.  Cells not containing a
    boundary — all but at most ``len(sorted_vals)`` of them — resolve with
    one table gather; only queries in mixed cells fall back to the exact
    ``searchsorted``.  Identical output to ``np.searchsorted(..., side)``.
    """
    lo_v = int(sorted_vals[0])
    hi_v = int(sorted_vals[-1])
    span = hi_v - lo_v  # exact Python int: no int64 overflow
    if span <= 0 or not -(2 ** 62) < lo_v <= hi_v < 2 ** 62:
        return np.searchsorted(sorted_vals, queries, side=side)
    bits = min(16, max(8, queries.size.bit_length() - 4))
    shift = max(0, span.bit_length() - bits)
    n_cells = (span >> shift) + 1
    bounds = lo_v + (np.arange(n_cells + 1, dtype=np.int64) << shift)
    # Result range per cell: side='right' counts <= q, side='left' counts
    # < q; the extremes within cell t are reached at q = bounds[t] and
    # q = bounds[t+1] - 1 (integer queries), for either side.  The table
    # packs the low result in bits 1.. and a mixed-cell flag in bit 0.
    lo_tab = np.searchsorted(sorted_vals, bounds[:-1], side=side)
    hi_tab = np.searchsorted(sorted_vals, bounds[1:] - 1, side=side)
    tab = (lo_tab.astype(np.int64) << np.int64(1)) | (hi_tab != lo_tab)

    below = queries < lo_v
    above = queries > hi_v
    cell = np.clip(queries, lo_v, hi_v).astype(np.int64, copy=False)
    cell -= lo_v
    cell >>= np.int64(shift)
    res = tab[cell]
    mixed = np.flatnonzero(res & np.int64(1))
    res >>= np.int64(1)
    if mixed.size:
        res[mixed] = np.searchsorted(sorted_vals, queries[mixed], side=side)
    # Below the smallest boundary both sides give 0; above the largest,
    # both give the full count (clipped queries fell into the edge cells,
    # whose table answers are for lo_v / hi_v — overwrite them).
    if below.any():
        res[below] = 0
    if above.any():
        res[above] = sorted_vals.size
    return res


def ragged_bincount_numpy(
    seg: np.ndarray, key: np.ndarray, key_offsets: np.ndarray,
    validate: bool = True,
) -> np.ndarray:
    """Reference implementation of :func:`ragged_bincount`.

    Item ``k`` belongs to segment ``seg[k]`` and falls into that segment's
    bin ``key[k]``; segment ``s`` owns ``key_offsets[s+1] - key_offsets[s]``
    bins.  Returns a flat int64 array of ``key_offsets[-1]`` counts — the
    concatenation of every segment's ``np.bincount``.  This is the
    per-``(group, PE)`` reduction of the batched lockstep engine: global
    bucket sizes per island, or piece sizes per ``(PE, destination group)``
    when the group count varies across islands.

    ``validate=False`` skips the per-element bin-range check (two extra
    whole-array passes); engine-internal callers whose keys come straight
    out of a ``searchsorted`` against the segment's own boundaries use it.
    """
    # Narrow ids (int32 segment expansions, int32 bucket indices) are kept
    # as-is: indexing and the mixed-width add below promote exactly, so
    # forcing int64 here would only add element-scale copies.
    seg = np.asarray(seg)
    key = np.asarray(key)
    key_offsets = np.asarray(key_offsets, dtype=np.int64)
    if seg.shape != key.shape:
        raise ValueError("seg and key must have the same shape")
    if validate and seg.size:
        widths = np.diff(key_offsets)
        if key.min(initial=0) < 0 or np.any(key >= widths[seg]):
            raise IndexError("bin index out of range for its segment")
    counts = np.bincount(key_offsets[seg] + key, minlength=int(key_offsets[-1]))
    return counts.astype(np.int64, copy=False)


def bincount_numpy(
    key: np.ndarray, minlength: int = 0, weights: Optional[np.ndarray] = None
) -> np.ndarray:
    """Reference implementation of :func:`bincount` (plain ``np.bincount``)."""
    return np.bincount(key, weights=weights, minlength=minlength)


def gather_numpy(values: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Reference implementation of :func:`gather` (``values[indices]``)."""
    return values[indices]


def take_ranges_numpy(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Reference implementation of :func:`take_ranges`.

    The index plane is a pure scratch (only the gather escapes), so it
    lives in the workspace arena for the duration of the call.
    """
    ws = get_arena()
    idx = concat_ranges(starts, lengths, arena=ws)
    out = values[idx]
    ws.recycle(idx)
    return out


# ----------------------------------------------------------------------
# Kernel dispatch
# ----------------------------------------------------------------------
# The active backend executing the element-scale kernels above.  ``None``
# until first use, then resolved from ``REPRO_BACKEND`` (default: the
# in-process numpy reference) by :func:`repro.dist.backend.get_backend`;
# :func:`repro.dist.backend.install` / ``use_backend`` swap it.

_BACKEND = None


def _active_backend():
    global _BACKEND
    if _BACKEND is None:
        from repro.dist.backend import get_backend

        _BACKEND = get_backend(None)
    return _BACKEND


def segmented_sort_values(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Stable-sort every segment of a CSR layout independently.

    Dispatches to the active backend; byte-identical to
    :func:`segmented_sort_values_numpy` (the full contract) on every
    backend.
    """
    return _active_backend().segmented_sort_values(values, offsets)


def segmented_searchsorted(
    values: np.ndarray,
    offsets: np.ndarray,
    queries: np.ndarray,
    query_seg: np.ndarray,
    side: Union[str, np.ndarray] = "left",
    lo: np.ndarray = None,
    hi: np.ndarray = None,
) -> np.ndarray:
    """Insertion position of every query inside its own sorted segment.

    Dispatches to the active backend; byte-identical to
    :func:`segmented_searchsorted_numpy` (the full contract) on every
    backend.
    """
    return _active_backend().segmented_searchsorted(
        values, offsets, queries, query_seg, side=side, lo=lo, hi=hi
    )


def blockwise_searchsorted(
    values: np.ndarray,
    offsets: np.ndarray,
    queries: np.ndarray,
    query_offsets: np.ndarray,
    side: str = "left",
) -> np.ndarray:
    """Per-segment ``searchsorted`` for queries grouped by segment.

    Dispatches to the active backend; byte-identical to
    :func:`blockwise_searchsorted_numpy` (the full contract) on every
    backend.
    """
    return _active_backend().blockwise_searchsorted(
        values, offsets, queries, query_offsets, side=side
    )


def ragged_bincount(
    seg: np.ndarray, key: np.ndarray, key_offsets: np.ndarray,
    validate: bool = True,
) -> np.ndarray:
    """Per-segment histograms with a per-segment number of bins, back to back.

    Dispatches to the active backend; byte-identical to
    :func:`ragged_bincount_numpy` (the full contract) on every backend.
    """
    return _active_backend().ragged_bincount(seg, key, key_offsets, validate=validate)


def bincount(
    key: np.ndarray, minlength: int = 0, weights: Optional[np.ndarray] = None
) -> np.ndarray:
    """``np.bincount`` through the active backend (element-scale reductions)."""
    return _active_backend().bincount(key, minlength=minlength, weights=weights)


def stable_key_argsort(key: np.ndarray, key_bound: int) -> np.ndarray:
    """Stable argsort of non-negative integer keys smaller than ``key_bound``.

    Dispatches to the active backend; byte-identical to
    :func:`stable_key_argsort_numpy` on every backend (the stable
    permutation is unique, so there is exactly one right answer).
    """
    return _active_backend().stable_key_argsort(key, key_bound)


def stable_two_key_argsort(
    major: np.ndarray, minor: np.ndarray, major_bound: int, minor_bound: int
) -> np.ndarray:
    """Stable argsort by ``(major, minor)`` pairs of small non-negative ints.

    Dispatches to the active backend; byte-identical to
    :func:`stable_two_key_argsort_numpy` on every backend.
    """
    return _active_backend().stable_two_key_argsort(
        major, minor, major_bound, minor_bound
    )


def gather(values: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """``values[indices]`` through the active backend (permutation planes)."""
    return _active_backend().gather(values, indices)


def take_ranges(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """``values[concat_ranges(starts, lengths)]`` through the active backend.

    The gather half of exchange assembly: concatenates the value ranges
    ``[starts[k], starts[k] + lengths[k])`` back to back.
    """
    return _active_backend().take_ranges(values, starts, lengths)


def map_by_unique(values: np.ndarray, fn) -> np.ndarray:
    """Apply a scalar ``fn`` to every element, evaluating once per distinct value.

    The per-PE modelled-cost vectors of the lockstep engine are built from
    scalar cost functions (``local_sort_time`` etc.) whose results must stay
    bit-identical to the per-PE reference loops; memoising by distinct input
    keeps the exact scalar code path while reducing ``p`` Python calls to
    one per distinct size (per-PE sizes cluster heavily after delivery).
    """
    values = np.asarray(values)
    if (
        values.size > 16
        and values.dtype.kind in "iu"
        and 0 <= int(values.min())
        # Table size must stay proportional to the work saved: linear in
        # the element count for small arrays, up to a fixed ceiling for
        # the big encoded-pair keys of whole-machine cost vectors.
        and int(values.max())
        <= max(8 * values.size + 1024, min(values.size * values.size, 1 << 22))
    ):
        # Bounded non-negative ints (per-PE sizes, fan-ins): find the
        # distinct values with one boolean scatter instead of a sort.
        bound = int(values.max()) + 1
        present = np.zeros(bound, dtype=bool)
        present[values] = True
        uniq = np.flatnonzero(present)
        table = np.empty(bound, dtype=np.float64)
        table[uniq] = [fn(int(x)) for x in uniq]
        return table[values]
    uniq, inverse = np.unique(values, return_inverse=True)
    out = np.array([fn(x) for x in uniq.tolist()], dtype=np.float64)
    return out[inverse]


def map_by_unique2(a: np.ndarray, b: np.ndarray, fn) -> np.ndarray:
    """Two-argument :func:`map_by_unique`: ``fn(a[i], b[i])`` memoised by pair.

    Encodes the pairs into single integers (``b`` must be non-negative) so
    the per-PE ``(size, fan-in)`` cost vectors of the lockstep engine reuse
    one scalar evaluation per distinct pair; the encode/decode lives here so
    call sites cannot get the bound arithmetic subtly wrong.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError("paired arrays must have the same shape")
    if b.size and b.min() < 0:
        raise ValueError("second key must be non-negative")
    bound = int(b.max(initial=0)) + 1
    return map_by_unique(
        a * bound + b, lambda key: fn(int(key) // bound, int(key) % bound)
    )


def split_intervals(
    bounds: np.ndarray, cuts: np.ndarray, total: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split the position range ``[0, total)`` at piece bounds and cut points.

    ``bounds`` are the *piece* boundaries (``len(pieces) + 1`` entries,
    starting at 0 and ending at ``total``); ``cuts`` are additional cut
    positions (e.g. destination-PE capacity boundaries).  The range is split
    into maximal intervals that cross neither kind of boundary — exactly the
    messages a prefix-sum data delivery produces when pieces are laid out
    consecutively over destination slots.

    Returns ``(piece_idx, start, length, interval_start)`` per interval, in
    ascending position order: the index of the piece the interval belongs
    to, the offset *within* that piece, the interval length, and the
    absolute start position (used to derive the destination).
    """
    bounds = np.asarray(bounds, dtype=np.int64)
    if total <= 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, e.copy(), e.copy()
    cuts = np.asarray(cuts, dtype=np.int64)
    cuts = cuts[(cuts > 0) & (cuts < total)]
    points = np.unique(np.concatenate([bounds, cuts, [0, total]]))
    points = points[(points >= 0) & (points <= total)]
    starts_abs = points[:-1]
    lengths = np.diff(points)
    keep = lengths > 0
    starts_abs = starts_abs[keep]
    lengths = lengths[keep]
    piece_idx = np.searchsorted(bounds, starts_abs, side="right") - 1
    start_in_piece = starts_abs - bounds[piece_idx]
    return piece_idx, start_in_piece, lengths, starts_abs
