"""Vectorised kernels for the flat execution engine.

These helpers are the numpy building blocks the :class:`~repro.dist.array.
DistArray` engine is made of.  They contain no simulator state and no cost
accounting — they are pure data transformations, shared by the flat ports of
the exchange, delivery, partitioning and merging steps.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np


def segment_ids(offsets: np.ndarray) -> np.ndarray:
    """Segment index of every element for a CSR ``offsets`` vector.

    ``offsets`` has ``p + 1`` entries; the result has ``offsets[-1]``
    entries, with value ``i`` repeated ``offsets[i+1] - offsets[i]`` times.
    Computed as a cumulative sum of boundary markers, which is considerably
    faster than ``np.repeat`` for large element counts.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64)
    marks = np.zeros(total, dtype=np.int64)
    interior = offsets[1:-1]
    interior = interior[interior < total]
    np.add.at(marks, interior, 1)
    return np.cumsum(marks, out=marks)


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Index array gathering the ranges ``[starts[k], starts[k]+lengths[k])``.

    The returned int64 array has ``lengths.sum()`` entries and enumerates all
    ranges back to back, so ``buffer[concat_ranges(s, l)]`` concatenates the
    ranges without any Python-level loop.  Zero-length ranges are skipped.
    Built as one cumulative sum of per-position steps (step 1 inside a
    range, a jump at every range boundary).
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have the same shape")
    nonzero = lengths > 0
    if not nonzero.all():
        starts = starts[nonzero]
        lengths = lengths[nonzero]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    step = np.ones(total, dtype=np.int64)
    step[0] = starts[0]
    if starts.size > 1:
        bounds = np.cumsum(lengths[:-1])
        step[bounds] = starts[1:] - starts[:-1] - lengths[:-1] + 1
    return np.cumsum(step, out=step)


def stable_key_argsort(key: np.ndarray, key_bound: int) -> np.ndarray:
    """Stable argsort of non-negative integer keys smaller than ``key_bound``.

    numpy's stable sort is a radix sort only for (u)int8/16 — an order of
    magnitude faster than the comparison sort used for wider integers — so
    the key is narrowed to ``uint16`` whenever the bound allows.  The
    resulting permutation is identical either way.
    """
    key = np.asarray(key)
    if 0 <= key_bound <= 2 ** 16:
        key = key.astype(np.uint16, copy=False)
    elif 0 <= key_bound < 2 ** 31:
        key = key.astype(np.int32, copy=False)
    return np.argsort(key, kind="stable")


def stable_two_key_argsort(
    major: np.ndarray, minor: np.ndarray, major_bound: int, minor_bound: int
) -> np.ndarray:
    """Stable argsort by ``(major, minor)`` pairs of small non-negative ints.

    When the combined key range fits 16 bits a single radix argsort is used;
    otherwise an LSD two-pass radix (stable sort by minor, then by major)
    keeps both passes in the fast 16-bit path.  Identical to a stable
    argsort of ``major * minor_bound + minor``.
    """
    if 0 <= major_bound * minor_bound <= 2 ** 16:
        return stable_key_argsort(
            major * minor_bound + minor, major_bound * minor_bound
        )
    if major_bound <= 2 ** 16 and minor_bound <= 2 ** 16:
        order = np.argsort(minor.astype(np.uint16, copy=False), kind="stable")
        order2 = np.argsort(
            major.astype(np.uint16, copy=False)[order], kind="stable"
        )
        return order[order2]
    return stable_key_argsort(major * minor_bound + minor, major_bound * minor_bound)


def segmented_sort_values(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Stable-sort every segment of a CSR layout independently.

    Byte-identical to ``np.sort(segment, kind="stable")`` applied per
    segment.  For reasonably sized segments this is done with in-place
    sorts of the segment slices (numpy's comparison sort on wide dtypes is
    much faster than a whole-array ``lexsort``); very short segments fall
    back to one stable argsort keyed by the segment id.
    """
    values = np.asarray(values)
    if values.size == 0:
        return values.copy()
    p = int(offsets.size) - 1
    if values.size >= 4 * p:
        out = values.copy()
        for i in range(p):
            out[offsets[i]:offsets[i + 1]].sort(kind="stable")
        return out
    seg = segment_ids(offsets)
    if p < 2 ** 31:
        seg = seg.astype(np.int32, copy=False)
    order = np.lexsort((values, seg))
    return values[order]


def segmented_searchsorted(
    values: np.ndarray,
    offsets: np.ndarray,
    queries: np.ndarray,
    query_seg: np.ndarray,
    side: Union[str, np.ndarray] = "left",
    lo: np.ndarray = None,
    hi: np.ndarray = None,
) -> np.ndarray:
    """Insertion position of every query inside its own sorted segment.

    ``values``/``offsets`` form a CSR layout whose segments are each sorted
    in non-decreasing order; query ``k`` is looked up in segment
    ``query_seg[k]``.  The result equals
    ``np.searchsorted(values[offsets[s]:offsets[s+1]], queries[k], side)``
    per query (positions are relative to the segment start), but all queries
    advance together through one segmented binary search —
    ``O(log max_segment_size)`` whole-batch vectorised bisection steps
    instead of a Python loop over segments.

    ``side`` is ``'left'``, ``'right'``, or a boolean array per query
    (``True`` = right); the per-query form is the *two-sided* search the
    multisequence selection uses, where the side depends on the position of
    the queried segment relative to the pivot owner (Appendix D
    tie-breaking).

    ``lo``/``hi`` optionally restrict query ``k`` to the half-open window
    ``[lo[k], hi[k])`` of its segment (positions relative to the segment
    start).  Because the segment is sorted the result — clamped into
    ``[lo[k], hi[k]]`` — is identical to clipping the full-segment position,
    while the bisection only pays for the window size.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    queries = np.asarray(queries)
    query_seg = np.asarray(query_seg, dtype=np.int64)
    if queries.shape != query_seg.shape or queries.ndim != 1:
        raise ValueError("queries and query_seg must be equal-length 1-D arrays")
    if query_seg.size and (
        query_seg.min(initial=0) < 0 or query_seg.max(initial=0) >= offsets.size - 1
    ):
        raise IndexError("query segment index out of range")
    if isinstance(side, str):
        if side not in ("left", "right"):
            raise ValueError("side must be 'left', 'right', or a boolean mask")
        right = np.full(queries.shape, side == "right", dtype=bool)
    else:
        right = np.asarray(side, dtype=bool)
        if right.shape != queries.shape:
            raise ValueError("per-query side mask must match the query shape")
    base = offsets[query_seg]
    if lo is None:
        cur_lo = base.copy()
    else:
        cur_lo = base + np.asarray(lo, dtype=np.int64)
    if hi is None:
        cur_hi = offsets[query_seg + 1].copy()
    else:
        cur_hi = base + np.asarray(hi, dtype=np.int64)
    if cur_lo.size and (
        np.any(cur_lo < base) or np.any(cur_hi > offsets[query_seg + 1])
        or np.any(cur_lo > cur_hi)
    ):
        raise IndexError("search window out of segment range")
    while True:
        active = cur_lo < cur_hi
        if not active.any():
            break
        mid = (cur_lo + cur_hi) >> 1
        probe = values[np.where(active, mid, 0)]
        go_right = np.where(right, probe <= queries, probe < queries) & active
        cur_lo = np.where(go_right, mid + 1, cur_lo)
        cur_hi = np.where(active & ~go_right, mid, cur_hi)
    return cur_lo - base


def blockwise_searchsorted(
    values: np.ndarray,
    offsets: np.ndarray,
    queries: np.ndarray,
    query_offsets: np.ndarray,
    side: str = "left",
) -> np.ndarray:
    """Per-segment ``searchsorted`` for queries grouped by segment.

    Segment ``s`` of the (individually sorted) CSR layout
    ``values``/``offsets`` is probed with the query block
    ``queries[query_offsets[s]:query_offsets[s+1]]``; positions are relative
    to the segment start.  Semantically identical to
    :func:`segmented_searchsorted` with ``query_seg`` expanded from
    ``query_offsets``, but each block runs as one C-speed ``np.searchsorted``
    — the right tool when there are *few* segments with *many* queries each
    (e.g. bucketing every element of an island against that island's
    splitters), whereas the segmented bisection wins for many segments with
    few queries each.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    queries = np.asarray(queries)
    query_offsets = np.asarray(query_offsets, dtype=np.int64)
    if query_offsets.size != offsets.size:
        raise ValueError("need exactly one query block per segment")
    if int(query_offsets[-1]) != queries.size:
        raise ValueError("query_offsets must cover the query array")
    out = np.empty(queries.size, dtype=np.int64)
    for s in range(offsets.size - 1):
        qlo, qhi = int(query_offsets[s]), int(query_offsets[s + 1])
        if qhi == qlo:
            continue
        seg = values[offsets[s]:offsets[s + 1]]
        if seg.size == 0:
            out[qlo:qhi] = 0
        else:
            out[qlo:qhi] = np.searchsorted(seg, queries[qlo:qhi], side=side)
    return out


def ragged_bincount(
    seg: np.ndarray, key: np.ndarray, key_offsets: np.ndarray
) -> np.ndarray:
    """Per-segment histograms with a per-segment number of bins, back to back.

    Item ``k`` belongs to segment ``seg[k]`` and falls into that segment's
    bin ``key[k]``; segment ``s`` owns ``key_offsets[s+1] - key_offsets[s]``
    bins.  Returns a flat int64 array of ``key_offsets[-1]`` counts — the
    concatenation of every segment's ``np.bincount``.  This is the
    per-``(group, PE)`` reduction of the batched lockstep engine: global
    bucket sizes per island, or piece sizes per ``(PE, destination group)``
    when the group count varies across islands.
    """
    seg = np.asarray(seg, dtype=np.int64)
    key = np.asarray(key, dtype=np.int64)
    key_offsets = np.asarray(key_offsets, dtype=np.int64)
    if seg.shape != key.shape:
        raise ValueError("seg and key must have the same shape")
    if seg.size:
        widths = np.diff(key_offsets)
        if key.min(initial=0) < 0 or np.any(key >= widths[seg]):
            raise IndexError("bin index out of range for its segment")
    counts = np.bincount(key_offsets[seg] + key, minlength=int(key_offsets[-1]))
    return counts.astype(np.int64, copy=False)


def map_by_unique(values: np.ndarray, fn) -> np.ndarray:
    """Apply a scalar ``fn`` to every element, evaluating once per distinct value.

    The per-PE modelled-cost vectors of the lockstep engine are built from
    scalar cost functions (``local_sort_time`` etc.) whose results must stay
    bit-identical to the per-PE reference loops; memoising by distinct input
    keeps the exact scalar code path while reducing ``p`` Python calls to
    one per distinct size (per-PE sizes cluster heavily after delivery).
    """
    values = np.asarray(values)
    uniq, inverse = np.unique(values, return_inverse=True)
    out = np.array([fn(x) for x in uniq.tolist()], dtype=np.float64)
    return out[inverse]


def map_by_unique2(a: np.ndarray, b: np.ndarray, fn) -> np.ndarray:
    """Two-argument :func:`map_by_unique`: ``fn(a[i], b[i])`` memoised by pair.

    Encodes the pairs into single integers (``b`` must be non-negative) so
    the per-PE ``(size, fan-in)`` cost vectors of the lockstep engine reuse
    one scalar evaluation per distinct pair; the encode/decode lives here so
    call sites cannot get the bound arithmetic subtly wrong.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError("paired arrays must have the same shape")
    if b.size and b.min() < 0:
        raise ValueError("second key must be non-negative")
    bound = int(b.max(initial=0)) + 1
    return map_by_unique(
        a * bound + b, lambda key: fn(int(key) // bound, int(key) % bound)
    )


def split_intervals(
    bounds: np.ndarray, cuts: np.ndarray, total: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split the position range ``[0, total)`` at piece bounds and cut points.

    ``bounds`` are the *piece* boundaries (``len(pieces) + 1`` entries,
    starting at 0 and ending at ``total``); ``cuts`` are additional cut
    positions (e.g. destination-PE capacity boundaries).  The range is split
    into maximal intervals that cross neither kind of boundary — exactly the
    messages a prefix-sum data delivery produces when pieces are laid out
    consecutively over destination slots.

    Returns ``(piece_idx, start, length, interval_start)`` per interval, in
    ascending position order: the index of the piece the interval belongs
    to, the offset *within* that piece, the interval length, and the
    absolute start position (used to derive the destination).
    """
    bounds = np.asarray(bounds, dtype=np.int64)
    if total <= 0:
        e = np.empty(0, dtype=np.int64)
        return e, e, e.copy(), e.copy()
    cuts = np.asarray(cuts, dtype=np.int64)
    cuts = cuts[(cuts > 0) & (cuts < total)]
    points = np.unique(np.concatenate([bounds, cuts, [0, total]]))
    points = points[(points >= 0) & (points <= total)]
    starts_abs = points[:-1]
    lengths = np.diff(points)
    keep = lengths > 0
    starts_abs = starts_abs[keep]
    lengths = lengths[keep]
    piece_idx = np.searchsorted(bounds, starts_abs, side="right") - 1
    start_in_piece = starts_abs - bounds[piece_idx]
    return piece_idx, start_in_piece, lengths, starts_abs
