"""Local sorting helpers and sortedness checks."""

from __future__ import annotations

from typing import Optional

import numpy as np


def local_sort(values: np.ndarray, kind: str = "stable") -> np.ndarray:
    """Sort a one-dimensional array and return a new sorted array.

    This is the "local sorting" step every PE performs; the simulator charges
    its modelled cost separately, so the implementation simply defers to
    NumPy's introsort/timsort.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("local_sort expects a one-dimensional array")
    return np.sort(values, kind=kind)


def insertion_sort(values: np.ndarray) -> np.ndarray:
    """Textbook insertion sort (pure Python) for very small inputs.

    Exists mostly so tests have an independent oracle that does not share a
    code path with NumPy's sort.
    """
    out = list(np.asarray(values).tolist())
    for i in range(1, len(out)):
        key = out[i]
        j = i - 1
        while j >= 0 and out[j] > key:
            out[j + 1] = out[j]
            j -= 1
        out[j + 1] = key
    arr = np.asarray(values)
    return np.asarray(out, dtype=arr.dtype if arr.size else np.float64)


def is_sorted(values: np.ndarray) -> bool:
    """True when the array is non-decreasing."""
    values = np.asarray(values)
    if values.size <= 1:
        return True
    return bool(np.all(values[1:] >= values[:-1]))


def sortedness_violations(values: np.ndarray) -> int:
    """Number of adjacent inversions (positions where ``a[i] > a[i+1]``)."""
    values = np.asarray(values)
    if values.size <= 1:
        return 0
    return int(np.count_nonzero(values[1:] < values[:-1]))


def counting_sort_small_range(values: np.ndarray, max_value: Optional[int] = None) -> np.ndarray:
    """Counting sort for small non-negative integer keys.

    Provided as an additional oracle and as a fast path for bucket-index
    arrays produced by the partitioners.
    """
    values = np.asarray(values)
    if values.size == 0:
        return values.copy()
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError("counting sort requires integer keys")
    if np.any(values < 0):
        raise ValueError("counting sort requires non-negative keys")
    hi = int(values.max()) if max_value is None else int(max_value)
    counts = np.bincount(values, minlength=hi + 1)
    return np.repeat(np.arange(hi + 1, dtype=values.dtype), counts)
