"""Partitioning data by splitters (super scalar sample sort style).

The dual operation of multiway merging (Section 2.2): given ``k - 1``
splitters, partition an array into ``k`` buckets such that bucket ``i``
contains the elements between splitter ``i - 1`` (inclusive) and splitter
``i`` (exclusive).  The C++ implementation in the paper uses the branch-free
partitioner of super scalar sample sort [32]; in NumPy the equivalent
vectorised operation is ``np.searchsorted`` on the splitter array, which we
use here.

Two variants are provided:

* :func:`partition_by_splitters` — the plain ``k``-way partition,
* :func:`partition_with_equality_buckets` — additionally produces *equality
  buckets* for elements equal to a splitter (Appendix D): this is the hook
  used by the implicit tie-breaking scheme, because elements that compare
  equal to a splitter are exactly the ones whose final bucket depends on the
  tie-breaking rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def _validate_splitters(splitters: np.ndarray) -> np.ndarray:
    splitters = np.asarray(splitters)
    if splitters.ndim != 1:
        raise ValueError("splitters must be one-dimensional")
    if splitters.size > 1 and np.any(splitters[1:] < splitters[:-1]):
        raise ValueError("splitters must be sorted in non-decreasing order")
    return splitters


def bucket_indices(values: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Bucket index of every element of ``values`` for the given splitters.

    Elements strictly smaller than ``splitters[0]`` go to bucket 0; elements
    ``>= splitters[i-1]`` and ``< splitters[i]`` go to bucket ``i``; elements
    ``>= splitters[-1]`` go to bucket ``len(splitters)``.
    """
    values = np.asarray(values)
    splitters = _validate_splitters(splitters)
    if splitters.size == 0:
        return np.zeros(values.shape, dtype=np.int64)
    return np.searchsorted(splitters, values, side="right").astype(np.int64)


def bucket_sizes(values: np.ndarray, splitters: np.ndarray) -> np.ndarray:
    """Sizes of the ``len(splitters) + 1`` buckets of ``values``."""
    splitters = _validate_splitters(splitters)
    idx = bucket_indices(values, splitters)
    return np.bincount(idx, minlength=splitters.size + 1).astype(np.int64)


def partition_by_splitters(
    values: np.ndarray, splitters: np.ndarray, stable: bool = True
) -> List[np.ndarray]:
    """Partition ``values`` into ``len(splitters) + 1`` buckets.

    The relative order of elements within a bucket is preserved when
    ``stable=True`` (default), mirroring the behaviour of a distribution
    pass that appends elements to per-bucket output buffers.
    """
    values = np.asarray(values)
    splitters = _validate_splitters(splitters)
    k = splitters.size + 1
    if values.size == 0:
        return [values[:0].copy() for _ in range(k)]
    idx = bucket_indices(values, splitters)
    if stable:
        order = np.argsort(idx, kind="stable")
    else:
        order = np.argsort(idx)
    sorted_idx = idx[order]
    boundaries = np.searchsorted(sorted_idx, np.arange(k + 1))
    permuted = values[order]
    return [permuted[boundaries[b]:boundaries[b + 1]].copy() for b in range(k)]


@dataclass
class EqualityPartition:
    """Result of :func:`partition_with_equality_buckets`.

    Attributes
    ----------
    buckets:
        ``len(splitters) + 1`` arrays with the elements strictly between
        consecutive splitters.
    equality_buckets:
        ``len(splitters)`` arrays; ``equality_buckets[i]`` holds the elements
        equal to ``splitters[i]``.
    """

    buckets: List[np.ndarray]
    equality_buckets: List[np.ndarray]

    def total_size(self) -> int:
        """Total number of elements across all buckets."""
        return int(sum(b.size for b in self.buckets)
                   + sum(e.size for e in self.equality_buckets))

    def merged_buckets(self, equal_goes_left: bool = True) -> List[np.ndarray]:
        """Fold the equality buckets back into the regular buckets.

        ``equal_goes_left=True`` appends elements equal to splitter ``i`` to
        bucket ``i`` (the bucket left of the splitter); otherwise they are
        prepended to bucket ``i + 1``.
        """
        k = len(self.buckets)
        out: List[np.ndarray] = [b.copy() for b in self.buckets]
        for i, eq in enumerate(self.equality_buckets):
            if eq.size == 0:
                continue
            if equal_goes_left:
                out[i] = np.concatenate([out[i], eq])
            else:
                out[i + 1] = np.concatenate([eq, out[i + 1]])
        return out


def partition_with_equality_buckets(
    values: np.ndarray, splitters: np.ndarray
) -> EqualityPartition:
    """Partition with explicit equality buckets (Appendix D).

    Elements strictly smaller than ``splitters[0]`` go to ``buckets[0]``,
    elements equal to ``splitters[i]`` go to ``equality_buckets[i]`` and so
    on.  Only elements in equality buckets ever need the explicit
    lexicographic tie-breaking comparison, which is what makes the implicit
    tie-breaking scheme cheap.
    """
    values = np.asarray(values)
    splitters = _validate_splitters(splitters)
    k = splitters.size + 1
    if splitters.size == 0:
        return EqualityPartition(buckets=[values.copy()], equality_buckets=[])
    left = np.searchsorted(splitters, values, side="left")
    right = np.searchsorted(splitters, values, side="right")
    is_equal = left != right  # value equals splitters[left]
    buckets: List[np.ndarray] = []
    order_regular = np.flatnonzero(~is_equal)
    reg_idx = right[order_regular]
    for b in range(k):
        buckets.append(values[order_regular[reg_idx == b]].copy())
    equality_buckets: List[np.ndarray] = []
    eq_positions = np.flatnonzero(is_equal)
    eq_idx = left[eq_positions]
    for s in range(splitters.size):
        equality_buckets.append(values[eq_positions[eq_idx == s]].copy())
    return EqualityPartition(buckets=buckets, equality_buckets=equality_buckets)


def splitters_from_sorted(sample: np.ndarray, count: int) -> np.ndarray:
    """Pick ``count`` equidistant splitters from a sorted sample.

    Used by sample sort: from a sorted sample of size ``s`` the splitters are
    the elements with ranks ``floor((i+1) * s / (count+1))`` for
    ``i = 0..count-1`` (clamped to the valid range).  Returns an empty array
    when the sample is too small to provide any splitters.
    """
    sample = np.asarray(sample)
    if count <= 0 or sample.size == 0:
        return sample[:0].copy()
    ranks = ((np.arange(1, count + 1) * sample.size) // (count + 1)).astype(np.int64)
    ranks = np.clip(ranks, 0, sample.size - 1)
    return sample[ranks].copy()
