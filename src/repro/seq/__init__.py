"""Sequential (single-PE) algorithmic toolbox.

The distributed algorithms of the paper lean on a small set of sequential
primitives (Section 2.2): ``r``-way merging of sorted runs, partitioning by
``r - 1`` splitters in the style of super scalar sample sort [32], selection
with specified ranks from a union of sorted runs, and plain local sorting.
This subpackage provides clean, NumPy-backed implementations of these
primitives, used both as the per-PE "local work" inside the simulator and as
directly unit-testable library functions.
"""

from repro.seq.merge import (
    LoserTree,
    multiway_merge,
    merge_two,
    merge_runs_numpy,
)
from repro.seq.partition import (
    partition_by_splitters,
    bucket_sizes,
    partition_with_equality_buckets,
)
from repro.seq.select import (
    select_from_sorted_runs,
    split_sorted_runs_at_ranks,
    quickselect,
)
from repro.seq.sorting import (
    local_sort,
    insertion_sort,
    is_sorted,
    sortedness_violations,
)
from repro.seq.sequences import (
    SortedRuns,
    runs_total_size,
    check_runs_sorted,
)

__all__ = [
    "LoserTree",
    "multiway_merge",
    "merge_two",
    "merge_runs_numpy",
    "partition_by_splitters",
    "bucket_sizes",
    "partition_with_equality_buckets",
    "select_from_sorted_runs",
    "split_sorted_runs_at_ranks",
    "quickselect",
    "local_sort",
    "insertion_sort",
    "is_sorted",
    "sortedness_violations",
    "SortedRuns",
    "runs_total_size",
    "check_runs_sorted",
]
