"""Sequential multiway merging of sorted runs.

The paper (Section 2.2) notes that ``r``-way merging of runs with total
length ``N`` can be done in ``O(N log r)`` time with a tournament (loser)
tree [20, 27, 33].  This module provides:

* :class:`LoserTree` — a classic loser-tree priority structure, faithful to
  the data structure used by the MCSTL multiway merge the paper's C++
  implementation calls,
* :func:`multiway_merge` — merge ``r`` runs using the loser tree (pure
  Python; exact and useful for tests and small inputs),
* :func:`merge_runs_numpy` — a vectorised merge (concatenate + stable sort /
  repeated pairwise ``np.merge``-style passes) used as the fast path for the
  simulator's per-PE local work,
* :func:`merge_two` — textbook linear two-way merge.

All functions preserve stability with respect to the input run order: ties
are resolved in favour of the run with the smaller index.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class LoserTree:
    """Tournament tree of losers over ``k`` sorted runs.

    The tree keeps, for every internal node, the *loser* of the comparison
    played at that node and propagates the overall winner to the root.
    Extracting the minimum and replaying the affected path costs
    ``O(log k)`` comparisons, giving ``O(N log k)`` for a full merge.

    Parameters
    ----------
    runs:
        Sequence of one-dimensional, individually sorted arrays.
    """

    def __init__(self, runs: Sequence[np.ndarray]):
        self.runs = [np.asarray(r) for r in runs]
        for i, r in enumerate(self.runs):
            if r.ndim != 1:
                raise ValueError(f"run {i} is not one-dimensional")
        self.k = max(1, len(self.runs))
        # Number of leaves rounded up to a power of two for a complete tree.
        size = 1
        while size < self.k:
            size *= 2
        self._size = size
        self._positions = [0] * len(self.runs)
        # tree[1..size-1] hold loser leaf indices; tree[0] holds the winner.
        self._tree = [-1] * (2 * size)
        self._exhausted_key = None
        self._build()

    # ------------------------------------------------------------------
    def _key(self, leaf: int):
        """Current key of ``leaf`` or ``None`` when the run is exhausted."""
        if leaf >= len(self.runs):
            return None
        pos = self._positions[leaf]
        run = self.runs[leaf]
        if pos >= run.size:
            return None
        return run[pos]

    def _less(self, a: int, b: int) -> bool:
        """Return True when leaf ``a`` currently beats leaf ``b`` (smaller key wins)."""
        ka, kb = self._key(a), self._key(b)
        if ka is None:
            return False
        if kb is None:
            return True
        if ka < kb:
            return True
        if kb < ka:
            return False
        return a < b  # stability: lower run index wins ties

    def _build(self) -> None:
        size = self._size
        # Initialise a full knockout tournament bottom-up.
        winners = list(range(size))
        for node in range(size - 1, 0, -1):
            left = winners[2 * node - size] if 2 * node >= size else None
            # Recompute winners level by level instead: simpler approach below.
            break
        # Simpler O(k log k) build: insert leaves one by one via replay.
        self._tree = [-1] * (2 * size)
        winner_of = {}
        # Leaves occupy slots size .. 2*size-1.
        for node in range(size, 2 * size):
            winner_of[node] = node - size
        for node in range(size - 1, 0, -1):
            a = winner_of[2 * node]
            b = winner_of[2 * node + 1]
            if self._less(a, b):
                winner_of[node] = a
                self._tree[node] = b
            else:
                winner_of[node] = b
                self._tree[node] = a
        self._tree[0] = winner_of[1] if size > 0 else -1

    # ------------------------------------------------------------------
    def empty(self) -> bool:
        """True when all runs are exhausted."""
        return self._key(self._tree[0]) is None

    def peek(self):
        """Smallest remaining key (or ``None`` when empty)."""
        return self._key(self._tree[0])

    def pop(self):
        """Remove and return the smallest remaining key."""
        winner = self._tree[0]
        key = self._key(winner)
        if key is None:
            raise IndexError("pop from an empty LoserTree")
        self._positions[winner] += 1
        # Replay the path from the winner's leaf to the root.
        node = (winner + self._size) // 2
        current = winner
        while node >= 1:
            opponent = self._tree[node]
            if opponent >= 0 and self._less(opponent, current):
                self._tree[node] = current
                current = opponent
            node //= 2
        self._tree[0] = current
        return key

    def __len__(self) -> int:
        return int(sum(r.size - p for r, p in zip(self.runs, self._positions)))


def multiway_merge(runs: Sequence[np.ndarray], dtype: Optional[np.dtype] = None) -> np.ndarray:
    """Merge ``k`` sorted runs into one sorted array using a loser tree.

    This is the exact, comparison-by-comparison implementation; it is
    ``O(N log k)`` but runs in pure Python, so use it for correctness tests
    and small inputs.  :func:`merge_runs_numpy` is the vectorised fast path.
    """
    runs = [np.asarray(r) for r in runs]
    non_empty = [r for r in runs if r.size > 0]
    if dtype is None:
        dtype = non_empty[0].dtype if non_empty else np.float64
    total = int(sum(r.size for r in runs))
    out = np.empty(total, dtype=dtype)
    if total == 0:
        return out
    tree = LoserTree(runs)
    for i in range(total):
        out[i] = tree.pop()
    return out


def merge_two(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Linear-time stable merge of two sorted arrays (ties favour ``a``)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    # Vectorised stable two-way merge via rank computation:
    # position of a[i] in the output = i + (# of b's strictly smaller than a[i])
    # position of b[j] in the output = j + (# of a's smaller-or-equal to b[j])
    out = np.empty(a.size + b.size, dtype=np.result_type(a.dtype, b.dtype))
    pos_a = np.arange(a.size) + np.searchsorted(b, a, side="left")
    pos_b = np.arange(b.size) + np.searchsorted(a, b, side="right")
    out[pos_a] = a
    out[pos_b] = b
    return out


def merge_runs_numpy(runs: Sequence[np.ndarray]) -> np.ndarray:
    """Vectorised multiway merge of sorted runs.

    Repeatedly merges pairs of runs with the vectorised two-way merge, which
    costs ``O(N log k)`` data movement and is dramatically faster than the
    pure-Python loser tree for large inputs while producing the identical
    (stable) result.
    """
    pieces: List[np.ndarray] = [np.asarray(r) for r in runs if np.asarray(r).size > 0]
    if not pieces:
        base = [np.asarray(r) for r in runs]
        dtype = base[0].dtype if base else np.float64
        return np.empty(0, dtype=dtype)
    if len(pieces) == 1:
        return pieces[0].copy()
    while len(pieces) > 1:
        merged: List[np.ndarray] = []
        for i in range(0, len(pieces) - 1, 2):
            merged.append(merge_two(pieces[i], pieces[i + 1]))
        if len(pieces) % 2 == 1:
            merged.append(pieces[-1])
        pieces = merged
    return pieces[0]
