"""Selection and splitting of sorted runs at prescribed global ranks.

This is the sequential core of *multisequence selection* (Section 4.1): given
sorted sequences ``d_1, ..., d_m`` and a rank ``k``, find split positions
``j_1, ..., j_m`` such that exactly ``k`` elements lie to the left of the
splits and no element left of a split exceeds any element right of a split.
The distributed version in :mod:`repro.blocks.multiselect` performs the same
search with collectives; the functions here are the exact sequential
reference used for local work and for testing.

Duplicate keys are handled without explicit tie breaking: when several runs
hold elements equal to the splitting value, the surplus is distributed over
the runs from left to right (equivalent to breaking ties by the run index,
the ``(x, PE, position)`` scheme of Appendix D).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def quickselect(values: np.ndarray, k: int) -> float:
    """Return the element of rank ``k`` (0-based) of ``values``.

    A thin wrapper around :func:`numpy.partition`, provided so the algorithm
    modules can express "select rank k" without caring about the mechanics.
    """
    values = np.asarray(values)
    if not 0 <= k < values.size:
        raise IndexError(f"rank {k} out of range for {values.size} elements")
    return values[np.argpartition(values, k)[k]]


def split_sorted_runs_at_ranks(
    runs: Sequence[np.ndarray], ranks: Sequence[int]
) -> np.ndarray:
    """Split positions of each run for each requested global rank.

    Parameters
    ----------
    runs:
        Individually sorted one-dimensional arrays.
    ranks:
        Non-decreasing global ranks ``0 <= k <= N`` (``N`` = total size).
        Rank ``k`` means "exactly ``k`` elements lie strictly to the left of
        the split".

    Returns
    -------
    numpy.ndarray
        Matrix ``S`` of shape ``(len(ranks), len(runs))`` where ``S[t, i]``
        is the number of elements of run ``i`` belonging to the left part for
        rank ``ranks[t]``.  For every ``t``: ``S[t].sum() == ranks[t]``, and
        the induced split is consistent (every element left of a split is
        ``<=`` every element right of a split).
    """
    runs = [np.asarray(r) for r in runs]
    for i, r in enumerate(runs):
        if r.ndim != 1:
            raise ValueError(f"run {i} is not one-dimensional")
        if r.size > 1 and np.any(r[1:] < r[:-1]):
            raise ValueError(f"run {i} is not sorted")
    sizes = np.array([r.size for r in runs], dtype=np.int64)
    total = int(sizes.sum())
    ranks = np.asarray(ranks, dtype=np.int64)
    if np.any(ranks < 0) or np.any(ranks > total):
        raise ValueError(f"ranks must lie in 0..{total}")
    if ranks.size > 1 and np.any(np.diff(ranks) < 0):
        raise ValueError("ranks must be non-decreasing")

    result = np.zeros((ranks.size, len(runs)), dtype=np.int64)
    if total == 0 or ranks.size == 0:
        return result

    union = np.sort(np.concatenate([r for r in runs if r.size > 0]), kind="stable")
    for t, k in enumerate(ranks):
        if k == 0:
            continue
        if k == total:
            result[t, :] = sizes
            continue
        pivot = union[k - 1]  # largest value in the left part
        # Take all elements strictly smaller than the pivot ...
        lower = np.array(
            [np.searchsorted(r, pivot, side="left") for r in runs], dtype=np.int64
        )
        upper = np.array(
            [np.searchsorted(r, pivot, side="right") for r in runs], dtype=np.int64
        )
        take = lower.copy()
        deficit = int(k - lower.sum())
        # ... then distribute the remaining slots over the runs holding
        # elements equal to the pivot, from left to right (tie breaking by
        # run index).
        if deficit < 0:
            raise AssertionError("rank bookkeeping error in split_sorted_runs_at_ranks")
        for i in range(len(runs)):
            if deficit == 0:
                break
            avail = int(upper[i] - lower[i])
            grab = min(avail, deficit)
            take[i] += grab
            deficit -= grab
        if deficit != 0:
            raise AssertionError("could not satisfy requested rank; input runs unsorted?")
        result[t] = take
    return result


def select_from_sorted_runs(runs: Sequence[np.ndarray], k: int) -> float:
    """Element of global rank ``k`` (0-based) in the union of sorted runs."""
    runs = [np.asarray(r) for r in runs]
    total = int(sum(r.size for r in runs))
    if not 0 <= k < total:
        raise IndexError(f"rank {k} out of range for {total} elements")
    splits = split_sorted_runs_at_ranks(runs, [k + 1])[0]
    # The selected element is the maximum of the last elements of the left parts.
    best = None
    for r, j in zip(runs, splits):
        if j > 0:
            candidate = r[j - 1]
            if best is None or candidate > best:
                best = candidate
    assert best is not None
    return best


def split_positions_are_consistent(
    runs: Sequence[np.ndarray], splits: Sequence[int]
) -> bool:
    """Check that a split of sorted runs is order-consistent.

    Every element in a left part must be ``<=`` every element in a right
    part.  Used by tests and by the distributed multiselect's debug mode.
    """
    runs = [np.asarray(r) for r in runs]
    splits = [int(s) for s in splits]
    left_max = None
    right_min = None
    for r, j in zip(runs, splits):
        if j > 0:
            m = r[j - 1]
            left_max = m if left_max is None else max(left_max, m)
        if j < r.size:
            m = r[j]
            right_min = m if right_min is None else min(right_min, m)
    if left_max is None or right_min is None:
        return True
    return bool(left_max <= right_min)
