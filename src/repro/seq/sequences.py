"""Containers for collections of sorted runs.

After the data exchange of RLM-sort every PE holds a handful of sorted runs
(one per sending PE / group) which it then merges; AMS-sort's recursion can
likewise exploit that received data is pre-partitioned.  ``SortedRuns`` is a
small convenience container for such collections that keeps the invariants
checkable and offers the merge/split operations the algorithms need.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.seq.merge import merge_runs_numpy
from repro.seq.sorting import is_sorted


class SortedRuns:
    """An ordered collection of individually sorted one-dimensional arrays."""

    def __init__(self, runs: Iterable[np.ndarray] = (), validate: bool = False):
        self._runs: List[np.ndarray] = [np.asarray(r) for r in runs]
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ValueError` unless every run is sorted and 1-D."""
        for i, r in enumerate(self._runs):
            if r.ndim != 1:
                raise ValueError(f"run {i} is not one-dimensional")
            if not is_sorted(r):
                raise ValueError(f"run {i} is not sorted")

    def append(self, run: np.ndarray) -> None:
        """Add one more sorted run."""
        self._runs.append(np.asarray(run))

    def extend(self, runs: Iterable[np.ndarray]) -> None:
        """Add several sorted runs."""
        for r in runs:
            self.append(r)

    # ------------------------------------------------------------------
    @property
    def runs(self) -> List[np.ndarray]:
        """The underlying list of runs (not copied)."""
        return self._runs

    def __len__(self) -> int:
        return len(self._runs)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._runs)

    def __getitem__(self, idx: int) -> np.ndarray:
        return self._runs[idx]

    def total_size(self) -> int:
        """Total number of elements across all runs."""
        return int(sum(r.size for r in self._runs))

    def non_empty(self) -> "SortedRuns":
        """A view containing only the non-empty runs."""
        return SortedRuns([r for r in self._runs if r.size > 0])

    # ------------------------------------------------------------------
    def merged(self) -> np.ndarray:
        """Merge all runs into a single sorted array."""
        return merge_runs_numpy(self._runs)

    def concatenated(self) -> np.ndarray:
        """Plain concatenation (not sorted across runs)."""
        pieces = [r for r in self._runs if r.size > 0]
        if not pieces:
            dtype = self._runs[0].dtype if self._runs else np.float64
            return np.empty(0, dtype=dtype)
        return np.concatenate(pieces)

    def dtype(self) -> np.dtype:
        """Common dtype of the runs (float64 when empty)."""
        for r in self._runs:
            if r.size > 0:
                return r.dtype
        return np.dtype(np.float64) if not self._runs else self._runs[0].dtype


def runs_total_size(runs: Sequence[np.ndarray]) -> int:
    """Total number of elements of a plain list of runs."""
    return int(sum(np.asarray(r).size for r in runs))


def check_runs_sorted(runs: Sequence[np.ndarray]) -> bool:
    """True when every run in the list is individually sorted."""
    return all(is_sorted(np.asarray(r)) for r in runs)
