"""Key distributions for sorting experiments.

The paper's weak-scaling experiments sort uniformly random 64-bit integers
(Section 7).  For the test-suite and for robustness experiments we add the
usual adversarial distributions from the sorting literature, including the
"many consecutive PEs contribute only tiny pieces" input that breaks the
naive data-delivery algorithm (Section 4.3, Figure 3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np


def uniform_keys(n: int, rng: np.random.Generator, high: int = 2**62) -> np.ndarray:
    """Uniformly random 64-bit integer keys (the paper's workload)."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    return rng.integers(0, high, size=n, dtype=np.int64)


def gaussian_keys(n: int, rng: np.random.Generator, scale: float = 1e9) -> np.ndarray:
    """Normally distributed keys rounded to integers (mild clustering)."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    return np.round(rng.normal(0.0, scale, size=n)).astype(np.int64)


def zipf_keys(n: int, rng: np.random.Generator, a: float = 1.3) -> np.ndarray:
    """Heavily skewed keys drawn from a Zipf distribution (many duplicates)."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    return rng.zipf(a, size=n).astype(np.int64)


def nearly_sorted_keys(
    n: int, rng: np.random.Generator, swap_fraction: float = 0.01
) -> np.ndarray:
    """An already sorted sequence with a small fraction of random swaps."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    keys = np.arange(n, dtype=np.int64)
    swaps = max(1, int(n * swap_fraction))
    idx_a = rng.integers(0, n, size=swaps)
    idx_b = rng.integers(0, n, size=swaps)
    keys[idx_a], keys[idx_b] = keys[idx_b].copy(), keys[idx_a].copy()
    return keys


def reverse_sorted_keys(n: int, rng: np.random.Generator) -> np.ndarray:
    """Strictly decreasing keys."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    return np.arange(n, 0, -1, dtype=np.int64)


def duplicate_heavy_keys(
    n: int, rng: np.random.Generator, distinct: int = 16
) -> np.ndarray:
    """Keys drawn from a tiny universe (stress test for tie handling)."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    return rng.integers(0, max(1, distinct), size=n, dtype=np.int64)


def all_equal_keys(n: int, rng: np.random.Generator, value: int = 42) -> np.ndarray:
    """Every key identical — the most extreme duplicate case."""
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    return np.full(n, value, dtype=np.int64)


def staggered_keys(n: int, rng: np.random.Generator, buckets: int = 16) -> np.ndarray:
    """The 'staggered' distribution: block-wise shifted values.

    Produces inputs where consecutive input blocks map to interleaved key
    ranges — a classic stress test for splitter-based algorithms.
    """
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64)
    block = np.maximum(1, n // max(1, buckets))
    block_id = idx // block
    within = idx % block
    return ((block_id % 2) * (n // 2) + (block_id // 2) * block + within).astype(np.int64)


def splitter_aliasing_keys(
    n: int, rng: np.random.Generator, runs: int = 32
) -> np.ndarray:
    """Long runs of identical keys sitting exactly on uniform quantiles.

    ``runs`` equal-length runs of one repeated key each, with the run values
    spread evenly over the key space — so every expected splitter position of
    a uniform-quantile partition lands *inside* a run of duplicates.  Any
    splitter-based algorithm that cannot break ties (the paper's implicit
    tie-breaking by PE rank, Section 5) would put an entire run on one side
    and blow its imbalance bound; with tie-breaking the bound must hold.
    Deterministic: ``rng`` is unused (kept for the generator signature).
    """
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    runs = max(1, min(int(runs), n))
    idx = np.arange(n, dtype=np.int64)
    run_id = (idx * runs) // n  # run boundaries at the exact n/runs quantiles
    return run_id * (2**62 // runs)


def tiny_pieces_keys(
    n: int, rng: np.random.Generator, p: int = 8, r: int = 8
) -> np.ndarray:
    """Single-stream view of :func:`tiny_pieces_worst_case`.

    Concatenates the per-PE adversarial pieces of a ``p``-sender, ``r``-group
    worst case and resizes to exactly ``n`` keys, so the distribution is
    usable through the generic :func:`generate_workload` interface (each PE
    of the simulated machine then holds a slice of the concatenation, which
    preserves the tiny/huge piece mixture).
    """
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    seed = int(rng.integers(0, 2**31))
    pieces = tiny_pieces_worst_case(p, r, max(1, -(-n // p)), seed=seed)
    return np.resize(np.concatenate(pieces), n)


WORKLOADS: Dict[str, Callable[..., np.ndarray]] = {
    "uniform": uniform_keys,
    "gaussian": gaussian_keys,
    "zipf": zipf_keys,
    "nearly_sorted": nearly_sorted_keys,
    "reverse": reverse_sorted_keys,
    "duplicates": duplicate_heavy_keys,
    "all_equal": all_equal_keys,
    "staggered": staggered_keys,
    "splitter_aliasing": splitter_aliasing_keys,
    "tiny_pieces": tiny_pieces_keys,
}


def generate_workload(
    name: str, n: int, rng: np.random.Generator | int = 0, **kwargs
) -> np.ndarray:
    """Generate ``n`` keys of the named distribution.

    ``rng`` may be a seed or an existing :class:`numpy.random.Generator`.
    Extra keyword arguments are forwarded to the generator function.
    """
    if n < 0:
        raise ValueError(f"workload size must be non-negative, got n={n}")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    try:
        factory = WORKLOADS[name]
    except KeyError as exc:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}") from exc
    return factory(n, rng, **kwargs)


def _tiny_pieces_per_pe(
    p: int, n_per_pe: int, seed: int = 0, r: int | None = None
) -> List[np.ndarray]:
    if r is None:
        r = max(2, min(8, p))
    return tiny_pieces_worst_case(p, r, n_per_pe, seed=seed)


#: Distributions with a *native* per-PE construction: the adversarial
#: pattern lives in how pieces are laid out across PEs, not in any single
#: PE's local distribution.  :func:`per_pe_workload` dispatches here first.
PER_PE_WORKLOADS: Dict[str, Callable[..., List[np.ndarray]]] = {
    "tiny_pieces": _tiny_pieces_per_pe,
}


def per_pe_workload(
    name: str, p: int, n_per_pe: int, seed: int = 0, **kwargs
) -> List[np.ndarray]:
    """Generate one local input array per PE (independent streams per PE).

    Workloads in :data:`PER_PE_WORKLOADS` build the whole machine's input at
    once (their adversarial structure spans PEs); all others draw each PE's
    keys from an independent seeded stream.  Extra keyword arguments are
    forwarded to the generator either way.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if n_per_pe < 0:
        raise ValueError(
            f"workload size must be non-negative, got n_per_pe={n_per_pe}"
        )
    per_pe_factory = PER_PE_WORKLOADS.get(name)
    if per_pe_factory is not None:
        return per_pe_factory(p, n_per_pe, seed=seed, **kwargs)
    out: List[np.ndarray] = []
    for i in range(p):
        rng = np.random.default_rng((seed + 1) * 99991 + i)
        out.append(generate_workload(name, n_per_pe, rng, **kwargs))
    return out


def tiny_pieces_worst_case(
    p: int, r: int, n_per_pe: int, seed: int = 0
) -> List[np.ndarray]:
    """Adversarial input for the naive data-delivery algorithm (Figure 3).

    Almost all PEs hold only a handful of elements destined for each group
    while a few PEs hold the bulk, so the naive prefix-sum enumeration packs
    a long run of tiny pieces onto a single receiving PE.  Returned as one
    local array per PE; keys are arranged so that a splitter-based partition
    into ``r`` ranges reproduces the tiny/huge piece pattern.
    """
    if p <= 0 or r <= 0:
        raise ValueError("p and r must be positive")
    rng = np.random.default_rng(seed)
    out: List[np.ndarray] = []
    heavy = max(1, p // r)  # one heavy PE per group's worth of senders
    key_range = 10**9
    bucket_width = key_range // r
    for i in range(p):
        if i % max(1, p // heavy) == 0:
            # heavy PE: full-size contribution spread over all key ranges
            keys = rng.integers(0, key_range, size=n_per_pe, dtype=np.int64)
        else:
            # tiny PE: a couple of elements per group range
            per_group = max(1, n_per_pe // (50 * r))
            keys = np.concatenate(
                [
                    rng.integers(g * bucket_width, (g + 1) * bucket_width,
                                 size=per_group, dtype=np.int64)
                    for g in range(r)
                ]
            )
        out.append(keys)
    return out
