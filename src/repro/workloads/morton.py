"""Morton (Z-order) space-filling-curve keys.

The introduction of the paper motivates sorting with load balancing in
supercomputer simulations: particles/cells are ordered along a space-filling
curve and the sorted order is cut into equal pieces, one per PE.  The
``spacefilling_loadbalance`` example reproduces exactly that application on
the simulator; this module provides the curve encoding.

Morton order interleaves the bits of the (quantised) coordinates.  It is not
as locality-preserving as a Hilbert curve but is the standard practical
choice (and what many production codes use) because encoding is a handful of
bit operations.
"""

from __future__ import annotations

import numpy as np


def interleave_bits(values: np.ndarray, spacing: int, bits: int) -> np.ndarray:
    """Spread the low ``bits`` bits of ``values`` with ``spacing - 1`` zero bits between them.

    ``interleave_bits(x, 2, bits)`` maps bit ``i`` of ``x`` to bit ``2 i`` of
    the result (the classic "part-1-by-1" operation); ``spacing=3`` is used
    for 3-D Morton codes.
    """
    values = np.asarray(values, dtype=np.uint64)
    if spacing < 1:
        raise ValueError("spacing must be at least 1")
    if bits * spacing > 63:
        raise ValueError("too many bits to interleave into a 64-bit word")
    out = np.zeros_like(values)
    for i in range(bits):
        bit = (values >> np.uint64(i)) & np.uint64(1)
        out |= bit << np.uint64(i * spacing)
    return out


def morton_encode_2d(x: np.ndarray, y: np.ndarray, bits: int = 21) -> np.ndarray:
    """Morton code of 2-D integer coordinates (``bits`` bits per dimension)."""
    x = np.asarray(x, dtype=np.uint64)
    y = np.asarray(y, dtype=np.uint64)
    if np.any(x >= (1 << bits)) or np.any(y >= (1 << bits)):
        raise ValueError(f"coordinates must fit into {bits} bits")
    return (interleave_bits(x, 2, bits) | (interleave_bits(y, 2, bits) << np.uint64(1))).astype(np.uint64)


def morton_decode_2d(codes: np.ndarray, bits: int = 21) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode_2d`."""
    codes = np.asarray(codes, dtype=np.uint64)
    x = np.zeros_like(codes)
    y = np.zeros_like(codes)
    for i in range(bits):
        x |= ((codes >> np.uint64(2 * i)) & np.uint64(1)) << np.uint64(i)
        y |= ((codes >> np.uint64(2 * i + 1)) & np.uint64(1)) << np.uint64(i)
    return x, y


def morton_encode_3d(x: np.ndarray, y: np.ndarray, z: np.ndarray, bits: int = 21) -> np.ndarray:
    """Morton code of 3-D integer coordinates (``bits`` bits per dimension)."""
    x = np.asarray(x, dtype=np.uint64)
    y = np.asarray(y, dtype=np.uint64)
    z = np.asarray(z, dtype=np.uint64)
    for c in (x, y, z):
        if np.any(c >= (1 << bits)):
            raise ValueError(f"coordinates must fit into {bits} bits")
    return (
        interleave_bits(x, 3, bits)
        | (interleave_bits(y, 3, bits) << np.uint64(1))
        | (interleave_bits(z, 3, bits) << np.uint64(2))
    ).astype(np.uint64)


def particle_morton_keys(
    positions: np.ndarray, bits: int = 20, bounds: tuple[float, float] | None = None
) -> np.ndarray:
    """Morton keys of floating-point particle positions.

    Parameters
    ----------
    positions:
        Array of shape ``(n, d)`` with ``d`` in {2, 3}.
    bits:
        Bits per dimension of the quantisation grid.
    bounds:
        ``(lo, hi)`` bounding box applied to every dimension; defaults to the
        min/max of the data.

    Returns signed ``int64`` keys (top bit unused) suitable for the sorting
    algorithms in this package.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] not in (2, 3):
        raise ValueError("positions must have shape (n, 2) or (n, 3)")
    if positions.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    if bounds is None:
        lo = float(positions.min())
        hi = float(positions.max())
    else:
        lo, hi = float(bounds[0]), float(bounds[1])
    span = max(hi - lo, 1e-300)
    scale = (1 << bits) - 1
    quant = np.clip(((positions - lo) / span) * scale, 0, scale).astype(np.uint64)
    if positions.shape[1] == 2:
        codes = morton_encode_2d(quant[:, 0], quant[:, 1], bits=bits)
    else:
        codes = morton_encode_3d(quant[:, 0], quant[:, 1], quant[:, 2], bits=bits)
    return codes.astype(np.int64)
