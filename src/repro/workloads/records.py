"""Sort-benchmark style records (Section 7.3, Minute-Sort comparison).

The Sort Benchmark (sortbenchmark.org) uses 100-byte records with a 10-byte
random key; the paper compares AMS-sort against Baidu-Sort, the 2014
Minute-Sort winner, on this format.  This module provides

* a NumPy structured dtype for such records,
* generators for random record arrays,
* helpers that pack the leading 8 bytes of the 10-byte key into an ``int64``
  so the distributed algorithms (which sort machine words) can order the
  records, plus the payload permutation utilities the example uses.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


#: 100-byte record: 10-byte key + 90-byte payload.
RECORD_DTYPE = np.dtype([("key", "S10"), ("payload", "S90")])


def generate_records(n: int, rng: np.random.Generator | int = 0) -> np.ndarray:
    """Generate ``n`` random 100-byte records."""
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    records = np.empty(n, dtype=RECORD_DTYPE)
    if n == 0:
        return records
    key_bytes = rng.integers(0, 256, size=(n, 10), dtype=np.uint8)
    payload_bytes = rng.integers(32, 127, size=(n, 90), dtype=np.uint8)
    # An S10 *view* of the raw byte rows keeps every byte, NUL included:
    # same-dtype field assignment is a buffer copy.  (Scalar reads of an S
    # field still strip trailing NULs — that is numpy's bytes semantics —
    # but the stored 10 bytes, comparisons and sorts all use the full key;
    # see ``key_to_bytes`` for lossless extraction.)
    records["key"] = np.frombuffer(key_bytes.tobytes(), dtype="S10")
    records["payload"] = np.frombuffer(payload_bytes.tobytes(), dtype="S90")
    return records


def key_to_bytes(keys: np.ndarray) -> np.ndarray:
    """Lossless ``(n, itemsize)`` uint8 view of an S-dtype key array.

    ``bytes(key[i])`` / ``.tolist()`` on an ``S`` array strip trailing NUL
    bytes (numpy treats the field as a C string), so a random 10-byte key
    ending in ``0x00`` silently round-trips shorter through Python-level
    access.  The raw byte matrix is the NUL-safe representation — it is
    what :func:`pack_key_bytes` packs and what tests should compare.
    """
    keys = np.asarray(keys)
    if keys.dtype.kind != "S":
        raise TypeError("expected a bytes (S) array of keys")
    itemsize = keys.dtype.itemsize
    raw = np.frombuffer(np.ascontiguousarray(keys).tobytes(), dtype=np.uint8)
    return raw.reshape(keys.size, itemsize)


def pack_key_bytes(keys: np.ndarray) -> np.ndarray:
    """Pack the first 8 bytes of 10-byte keys into big-endian ``uint64`` words.

    The packing is order preserving for the leading 8 bytes; the remaining
    2 bytes only matter for records whose first 8 bytes collide (probability
    ``~2^-64`` for random keys), which the example resolves with a final
    stable local sort on the full byte key.
    """
    raw = key_to_bytes(keys)
    first8 = np.ascontiguousarray(raw[:, :8])
    return first8.view(">u8").reshape(raw.shape[0]).astype(np.uint64)


def unpack_key_bytes(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_key_bytes` (returns 8-byte keys).

    The returned ``S8`` array stores all 8 bytes — trailing NULs included —
    so packing it again is lossless (``pack_key_bytes(unpack_key_bytes(w))
    == w``).  Only *Python-level* reads of an element strip trailing NULs;
    use :func:`key_to_bytes` when the exact bytes are needed as a matrix.
    """
    words = np.asarray(words, dtype=np.uint64)
    be = words.astype(">u8")
    return be.view(np.uint8).reshape(words.size, 8).copy().view("S8").reshape(words.size)


def record_keys(records: np.ndarray, signed: bool = True) -> np.ndarray:
    """Sortable integer keys of a record array.

    Returns ``int64`` keys (by default) obtained from the top 63 bits of the
    packed 8-byte prefix, so they can be mixed with the rest of the library
    which uses signed machine words.  Ordering of the returned keys matches
    the ordering of the byte keys except for prefix collisions.
    """
    packed = pack_key_bytes(np.asarray(records)["key"])
    if not signed:
        return packed
    return (packed >> np.uint64(1)).astype(np.int64)


def split_records(records: np.ndarray, p: int) -> Tuple[list, list]:
    """Distribute records over ``p`` PEs; returns (per-PE records, per-PE keys)."""
    records = np.asarray(records)
    chunks = np.array_split(records, p)
    keys = [record_keys(c) if c.size else np.empty(0, dtype=np.int64) for c in chunks]
    return [np.ascontiguousarray(c) for c in chunks], keys
