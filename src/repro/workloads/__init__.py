"""Input workload generators for experiments, examples and tests.

* :mod:`repro.workloads.generators` — distributions of sort keys used by the
  paper's experiments (uniform random 64-bit integers) plus standard
  adversarial distributions (skewed, nearly sorted, heavy duplicates, and
  the "many tiny pieces" worst case for naive data delivery),
* :mod:`repro.workloads.records` — sort-benchmark style records (100-byte
  payload, 10-byte key) used for the Minute-Sort comparison of Section 7.3,
* :mod:`repro.workloads.morton` — Morton (Z-order) and Hilbert-like
  space-filling-curve keys for the load-balancing application the paper's
  introduction motivates.
"""

from repro.workloads.generators import (
    WORKLOADS,
    generate_workload,
    uniform_keys,
    gaussian_keys,
    zipf_keys,
    nearly_sorted_keys,
    reverse_sorted_keys,
    duplicate_heavy_keys,
    all_equal_keys,
    staggered_keys,
    tiny_pieces_worst_case,
    per_pe_workload,
)
from repro.workloads.records import (
    RECORD_DTYPE,
    generate_records,
    record_keys,
    pack_key_bytes,
    unpack_key_bytes,
)
from repro.workloads.morton import (
    morton_encode_2d,
    morton_decode_2d,
    morton_encode_3d,
    interleave_bits,
    particle_morton_keys,
)

__all__ = [
    "WORKLOADS",
    "generate_workload",
    "uniform_keys",
    "gaussian_keys",
    "zipf_keys",
    "nearly_sorted_keys",
    "reverse_sorted_keys",
    "duplicate_heavy_keys",
    "all_equal_keys",
    "staggered_keys",
    "tiny_pieces_worst_case",
    "per_pe_workload",
    "RECORD_DTYPE",
    "generate_records",
    "record_keys",
    "pack_key_bytes",
    "unpack_key_bytes",
    "morton_encode_2d",
    "morton_decode_2d",
    "morton_encode_3d",
    "interleave_bits",
    "particle_morton_keys",
]
