"""Benchmark / reproduction of Table 2: AMS-sort weak-scaling wall-times.

The paper's Table 2 reports the median wall-time of AMS-sort (best level
choice) for ``p`` in {512..32768} and ``n/p`` in {1e5..1e7} on SuperMUC.  The
reproduction runs the same sweep at a reduced scale on the simulated
SuperMUC-like machine and reports the modelled times; the expected *shape* is
that the time per element stays within a small factor as ``p`` grows (weak
scalability), which the assertion checks.

Standalone usage runs the sweep through the sharded campaign machinery —
``--jobs`` fans the cells over worker processes, ``--resume`` (default)
reuses cached cell summaries from an interrupted or earlier run::

    PYTHONPATH=src python benchmarks/bench_table2_weak_scaling.py \
        --scale quick --jobs 4 --output BENCH_table2.json
    # the paper's machine sizes (p up to 32768, flat engine only):
    PYTHONPATH=src python benchmarks/bench_table2_weak_scaling.py --scale paper
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import publish

from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner
from repro.experiments.weak_scaling import (
    paper_reference_rows,
    table2_rows,
    weak_scaling_rows,
)


def run_sweep(profile):
    runner = ExperimentRunner()
    rows = weak_scaling_rows(
        p_values=profile["p_values"],
        n_per_pe_values=profile["n_per_pe_values"],
        level_counts=(1, 2),
        repetitions=profile["repetitions"],
        node_size=profile["node_size"],
        runner=runner,
    )
    return rows


def test_table2_weak_scaling(benchmark, profile):
    rows = benchmark.pedantic(run_sweep, args=(profile,), rounds=1, iterations=1)
    best = table2_rows(rows)

    text = format_table(
        best,
        title=(
            "Table 2 (scaled reproduction) — AMS-sort median modelled wall-times, "
            f"best level choice, machine=supermuc-like, scale p={profile['p_values']}, "
            f"n/p={profile['n_per_pe_values']}"
        ),
    )
    text += "\n" + format_table(paper_reference_rows(),
                                title="Paper Table 2 (SuperMUC reference, seconds)")
    publish("table2_weak_scaling", text)

    # Weak-scaling shape: for fixed n/p the modelled time grows only mildly
    # with p (the paper sees a factor <= ~3.5 from 512 to 32768 PEs).
    for n_per_pe in profile["n_per_pe_values"]:
        times = [row["time_median_s"] for row in best if row["n_per_pe"] == n_per_pe]
        assert times, "missing weak-scaling rows"
        assert max(times) <= 12 * min(times)
    # Times increase (roughly linearly) with n/p for fixed p.
    for p in profile["p_values"]:
        times = [row["time_median_s"] for row in best if row["p"] == p]
        assert times == sorted(times)


# ----------------------------------------------------------------------
# Standalone (sharded campaign) entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse
    import json

    from repro.experiments.campaign import (
        campaign_to_json,
        format_campaign,
        run_campaign,
    )
    from repro.experiments.harness import SCALE_PROFILES

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick", choices=sorted(SCALE_PROFILES),
                        help="scale profile; 'paper' reaches p=32768 (flat engine)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the cell fan-out")
    parser.add_argument("--workloads", nargs="+", default=None,
                        help="workload axis (default: the campaign default)")
    parser.add_argument("--cache-dir", type=Path,
                        default=Path(__file__).parent / "results" / "campaign-cache",
                        help="cell summary cache (resume point)")
    parser.add_argument("--no-resume", dest="resume", action="store_false",
                        help="ignore previously cached cell summaries")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the weak-scaling campaign summary JSON")
    args = parser.parse_args(argv)

    summary, stats = run_campaign(
        profile=args.scale,
        experiments=("weak_scaling",),
        workloads=args.workloads,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        resume=args.resume,
        progress=lambda msg: print(msg, file=sys.stderr, flush=True),
    )
    print(format_campaign(summary))
    print(format_table(paper_reference_rows(),
                       title="Paper Table 2 (SuperMUC reference, seconds)"))
    print(f"campaign stats: {json.dumps(stats)}")
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(campaign_to_json(summary))
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
