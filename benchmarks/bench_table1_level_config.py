"""Benchmark / reproduction of Table 1: group counts r per recursion level.

Table 1 of the paper lists, for the weak-scaling experiments, how many groups
every level of AMS-sort splits the MPI processes into.  The reproduction
checks that :func:`repro.core.config.level_plan` generates exactly the
paper's choices (for the multi-level rows) and benchmarks the planning
routine itself.
"""

from conftest import publish

from repro.core.config import level_plan
from repro.experiments.level_table import PAPER_TABLE1, run as level_table_run


PAPER_P = (512, 2048, 8192, 32768)


def plan_all() -> dict:
    """Compute the level plan for every paper configuration."""
    return {
        (k, p): level_plan(p, k, node_size=16)
        for k in (1, 2, 3)
        for p in PAPER_P
    }


def test_table1_level_plan(benchmark):
    plans = benchmark(plan_all)
    # The multi-level rows must match the paper exactly.
    for k in (2, 3):
        for p in PAPER_P:
            assert plans[(k, p)] == PAPER_TABLE1[k][p], (k, p)
    publish("table1_level_config", level_table_run())
