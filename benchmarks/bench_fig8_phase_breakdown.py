"""Benchmark / reproduction of Figure 8: phase breakdown of AMS-sort, 1-3 levels.

Figure 8 stacks, for every ``(p, n/p)`` and level count, the time spent in
splitter selection, bucket processing, data delivery and local sorting
(accumulated over all recursion levels).  Expected shape (from the paper):

* splitter selection never dominates,
* data delivery is the largest communication phase and benefits from more
  levels at large ``p`` / small ``n/p``,
* local sorting dominates when ``n/p`` is large.
"""

from conftest import publish

from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner
from repro.experiments.weak_scaling import figure8_rows, weak_scaling_rows
from repro.machine.counters import (
    PHASE_DATA_DELIVERY,
    PHASE_LOCAL_SORT,
    PHASE_SPLITTER_SELECTION,
)


def run_sweep(profile):
    runner = ExperimentRunner()
    rows = weak_scaling_rows(
        p_values=profile["p_values"],
        n_per_pe_values=profile["n_per_pe_values"],
        level_counts=(1, 2, 3),
        repetitions=profile["repetitions"],
        node_size=profile["node_size"],
        runner=runner,
    )
    return figure8_rows(rows)


def test_fig8_phase_breakdown(benchmark, profile):
    rows = benchmark.pedantic(run_sweep, args=(profile,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=(
            "Figure 8 (scaled reproduction) — AMS-sort phase breakdown "
            "(splitter selection / bucket processing / data delivery / local sort), "
            "accumulated over recursion levels"
        ),
    )
    publish("fig8_phase_breakdown", text)

    largest_n = max(row["n_per_pe"] for row in rows)
    smallest_n = min(row["n_per_pe"] for row in rows)
    for row in rows:
        total = row["time_median_s"]
        # Splitter selection is never the dominant phase (paper, Section 7.2).
        assert row[PHASE_SPLITTER_SELECTION] < 0.6 * total

    # The local-sorting share grows with n/p: compute (not communication)
    # dominates for large per-PE volumes (paper: n/p = 1e7 panels).
    def sort_share(n_per_pe, levels=1):
        matching = [r for r in rows if r["n_per_pe"] == n_per_pe and r["levels"] == levels]
        return sum(r[PHASE_LOCAL_SORT] / r["time_median_s"] for r in matching) / len(matching)

    assert sort_share(largest_n) > sort_share(smallest_n)

    # More levels reduce the data-delivery phase at the largest p / smallest n/p
    # (the startup-bound regime the multi-level algorithms target).
    largest_p = max(row["p"] for row in rows)
    delivery = {
        row["levels"]: row[PHASE_DATA_DELIVERY]
        for row in rows
        if row["p"] == largest_p and row["n_per_pe"] == smallest_n
    }
    if 1 in delivery and 2 in delivery:
        assert delivery[2] <= delivery[1] * 1.6
