"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper on a scaled-down
configuration (pure-Python simulation cannot hold 32768 PEs with 10^7
elements each).  The wall-clock time measured by pytest-benchmark is the cost
of running the *simulation*; the scientific output — the rows/series that
correspond to the paper's tables and figures, expressed in modelled machine
time — is printed to stdout and written to ``benchmarks/results/``.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``quick`` (default, minutes), ``medium``, ``large``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """Benchmark scale profile name."""
    return os.environ.get("REPRO_BENCH_SCALE", os.environ.get("REPRO_SCALE", "quick"))


def bench_profile() -> dict:
    """Scaled (p, n/p) grids used by the benchmark suite."""
    profiles = {
        "quick": {
            "p_values": (16, 64),
            "n_per_pe_values": (200, 2000),
            "node_size": 4,
            "repetitions": 1,
            "overpartition_p": 16,
            "overpartition_n": 2000,
        },
        "medium": {
            "p_values": (64, 256),
            "n_per_pe_values": (500, 5000),
            "node_size": 8,
            "repetitions": 2,
            "overpartition_p": 64,
            "overpartition_n": 10000,
        },
        "large": {
            "p_values": (256, 1024, 4096),
            "n_per_pe_values": (1000, 10000),
            "node_size": 16,
            "repetitions": 3,
            "overpartition_p": 512,
            "overpartition_n": 100000,
        },
    }
    return profiles.get(bench_scale(), profiles["quick"])


def publish(name: str, text: str) -> None:
    """Print a reproduced table/figure and archive it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


@pytest.fixture
def profile():
    """The scaled benchmark profile."""
    return bench_profile()
