"""Benchmark / reproduction of Figure 11: wall-time vs samples per PE.

Figure 11 of the paper plots the total wall-time and the splitter-selection
("sampling") time of 1-level AMS-sort against the number of samples per
process, for oversampling factors ``a`` in {1, 8, 16}.  Expected shape: a
U-curve — too few samples hurt (imbalance makes delivery and local sorting
slower), too many samples hurt (sampling itself starts to dominate), and the
sampling share of the wall-time grows monotonically with the sample count.
"""

from conftest import publish

from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner
from repro.experiments.overpartitioning import walltime_sweep_rows


A_VALUES = (1.0, 8.0, 16.0)
SAMPLES_PER_PE = (4, 16, 64, 256, 1024)


def run_sweep(profile):
    runner = ExperimentRunner()
    return walltime_sweep_rows(
        p=profile["overpartition_p"],
        n_per_pe=profile["overpartition_n"],
        a_values=A_VALUES,
        samples_per_pe_values=SAMPLES_PER_PE,
        node_size=profile["node_size"],
        repetitions=profile["repetitions"],
        runner=runner,
    )


def test_fig11_overpartitioning_walltime(benchmark, profile):
    rows = benchmark.pedantic(run_sweep, args=(profile,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=(
            "Figure 11 (scaled reproduction) — total wall-time and sampling time of "
            "1-level AMS-sort vs samples per PE (a*b), for a in {1, 8, 16}"
        ),
    )
    publish("fig11_overpartitioning", text)

    for a in A_VALUES:
        series = [row for row in rows if row["a"] == a]
        series.sort(key=lambda r: r["samples_per_pe"])
        sampling = [row["sampling_time_s"] for row in series]
        # Sampling cost grows with the number of samples drawn.
        assert sampling[-1] >= sampling[0]
        # The largest sample count should not be the fastest overall
        # configuration (the right branch of the U-curve).
        totals = [row["total_time_s"] for row in series]
        assert totals[-1] >= min(totals)
