"""Benchmark / reproduction of Figure 10: output imbalance vs samples per PE.

Appendix E of the paper fixes ``p = 512`` and ``n/p = 1e5`` and sweeps the
number of samples per process ``a * b`` for overpartitioning factors
``b`` in {1, 8, 16}.  Expected shape: the maximum imbalance falls with the
sample size, and for a fixed sample size a larger overpartitioning factor
``b`` gives a (much) smaller imbalance — this is the point of
overpartitioning (Lemma 2: the required sample size drops from
``O(1/eps^2)`` to ``O(1/eps)``).
"""

from conftest import publish

from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner
from repro.experiments.overpartitioning import imbalance_sweep_rows


B_VALUES = (1, 8, 16)
SAMPLES_PER_PE = (4, 16, 64, 256)


def run_sweep(profile):
    runner = ExperimentRunner()
    return imbalance_sweep_rows(
        p=profile["overpartition_p"],
        n_per_pe=profile["overpartition_n"],
        b_values=B_VALUES,
        samples_per_pe_values=SAMPLES_PER_PE,
        node_size=profile["node_size"],
        repetitions=profile["repetitions"],
        runner=runner,
    )


def test_fig10_imbalance(benchmark, profile):
    rows = benchmark.pedantic(run_sweep, args=(profile,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=(
            "Figure 10 (scaled reproduction) — maximum output imbalance of "
            "1-level AMS-sort vs samples per PE (a*b), for b in {1, 8, 16}"
        ),
    )
    publish("fig10_imbalance", text)

    by_key = {(row["b"], row["samples_per_pe"]): row["imbalance"] for row in rows}
    # Imbalance decreases with the sample size for every b.
    for b in B_VALUES:
        assert by_key[(b, SAMPLES_PER_PE[-1])] <= by_key[(b, SAMPLES_PER_PE[0])]
    # For the largest sample size, overpartitioning (b=16) is at least as good
    # as no overpartitioning (b=1), and for mid-size samples it is clearly better.
    assert by_key[(16, 256)] <= by_key[(1, 256)] + 0.02
    assert by_key[(16, 64)] <= by_key[(1, 64)] + 0.05
    # With a reasonable sample, the imbalance is small in absolute terms.
    assert by_key[(16, 256)] < 0.2
