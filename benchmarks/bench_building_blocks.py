"""Micro-benchmarks and ablations of the building blocks (Section 4).

These are not paper figures; they are the ablation benches DESIGN.md calls
out for the design choices of the building blocks:

* multisequence selection (one collective round per pivot) — scaling with r,
* data delivery strategies — message bounds of naive vs deterministic vs
  advanced on the adversarial tiny-pieces input,
* bucket grouping — plain binary search vs the Appendix C accelerated search,
* fast work-inefficient sorting of a sample,
* sequential multiway merging (loser tree vs vectorised merge).
"""

import numpy as np
import pytest
from conftest import publish

from repro.analysis.tables import format_table
from repro.blocks.delivery import deliver_to_groups
from repro.blocks.fast_sort import select_splitters_by_rank
from repro.blocks.grouping import optimal_bucket_grouping
from repro.blocks.multiselect import multisequence_select
from repro.machine.spec import laptop_like
from repro.seq.merge import merge_runs_numpy, multiway_merge
from repro.sim.machine import SimulatedMachine


def make_comm(p):
    return SimulatedMachine(p, spec=laptop_like(), seed=1).world()


class TestMultiselectBench:
    def test_bench_multiselect_r16(self, benchmark):
        p, n_per_pe, r = 32, 2000, 16
        rng = np.random.default_rng(0)
        data = [np.sort(rng.integers(0, 10**9, n_per_pe)) for _ in range(p)]
        ranks = [(g * p * n_per_pe) // r for g in range(1, r)]

        def run():
            comm = make_comm(p)
            return multisequence_select(comm, data, ranks)

        result = benchmark(run)
        assert result.splits.shape == (r - 1, p)


class TestDeliveryBench:
    @pytest.mark.parametrize("method", ["naive", "deterministic", "advanced"])
    def test_bench_delivery(self, benchmark, method):
        p, r = 32, 4
        rng = np.random.default_rng(2)
        pieces = []
        for i in range(p):
            if i % 8 == 0:
                pieces.append([rng.integers(0, 1000, 2000) for _ in range(r)])
            else:
                pieces.append([rng.integers(0, 1000, 2) for _ in range(r)])

        def run():
            comm = make_comm(p)
            groups = comm.split(r)
            return deliver_to_groups(comm, groups, pieces, method=method)

        result = benchmark(run)
        assert result.received_sizes.sum() == sum(
            piece.size for row in pieces for piece in row
        )

    def test_delivery_message_ablation(self, benchmark):
        """Ablation table: max received messages per strategy on the worst case."""
        p, r = 64, 4
        rng = np.random.default_rng(3)
        pieces = []
        for i in range(p):
            if i == 0:
                pieces.append([rng.integers(0, 1000, 5000) for _ in range(r)])
            else:
                pieces.append([rng.integers(0, 1000, 1) for _ in range(r)])

        def run_all():
            rows = []
            for method in ("naive", "randomized", "deterministic", "advanced"):
                comm = make_comm(p)
                groups = comm.split(r)
                result = deliver_to_groups(comm, groups, pieces, method=method, seed=5)
                rows.append({
                    "method": method,
                    "max_recv_messages": result.max_received_messages(),
                    "max_sent_messages": result.max_sent_messages(),
                    "modelled_time_s": result.exchange.time,
                })
            return rows

        rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
        publish("ablation_delivery_messages", format_table(
            rows,
            title=("Ablation — data delivery strategies on the adversarial "
                   "tiny-pieces input (Section 4.3 / Appendix A)"),
        ))
        by_method = {row["method"]: row["max_recv_messages"] for row in rows}
        assert by_method["deterministic"] < by_method["naive"]


class TestGroupingBench:
    @pytest.mark.parametrize("method", ["binary", "accelerated"])
    def test_bench_grouping(self, benchmark, method):
        rng = np.random.default_rng(4)
        sizes = rng.integers(0, 10**6, size=1024)
        result = benchmark(lambda: optimal_bucket_grouping(sizes, 64, method=method))
        assert result.max_load >= int(sizes.max())

    def test_grouping_scan_count_ablation(self, benchmark):
        rng = np.random.default_rng(5)
        sizes = rng.integers(0, 10**6, size=2048)

        def run_all():
            rows = []
            for method in ("binary", "accelerated"):
                result = optimal_bucket_grouping(sizes, 128, method=method)
                rows.append({"method": method, "scan_calls": result.scan_calls,
                             "max_load": result.max_load})
            return rows

        rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
        publish("ablation_grouping_scans", format_table(
            rows, title="Ablation — bucket grouping search (Appendix C acceleration)"))
        assert rows[0]["max_load"] == rows[1]["max_load"]


class TestFastSortBench:
    def test_bench_fast_sample_sort(self, benchmark):
        p = 64
        rng = np.random.default_rng(6)
        samples = [rng.integers(0, 10**9, 64) for _ in range(p)]

        def run():
            comm = make_comm(p)
            return select_splitters_by_rank(comm, samples, 127)

        splitters = benchmark(run)
        assert splitters.size == 127


class TestSequentialMergeBench:
    def test_bench_vectorised_merge(self, benchmark):
        rng = np.random.default_rng(7)
        runs = [np.sort(rng.integers(0, 10**9, 20000)) for _ in range(16)]
        out = benchmark(lambda: merge_runs_numpy(runs))
        assert out.size == 16 * 20000

    def test_bench_loser_tree_merge_small(self, benchmark):
        rng = np.random.default_rng(8)
        runs = [np.sort(rng.integers(0, 10**6, 300)) for _ in range(8)]
        out = benchmark(lambda: multiway_merge(runs))
        assert out.size == 8 * 300
