"""Benchmark / reproduction of Figure 12: spread of wall-times over repetitions.

Figure 12 shows the distribution of AMS-sort wall-times over repeated runs of
every weak-scaling configuration.  On the real machine the spread is caused
by network interference and by sampling noise; in the deterministic simulator
only the sampling noise remains (different random samples give different
splitters and hence different bucket/piece sizes).  The reproduction reports
the median/min/max per configuration and checks that the spread is modest
relative to the median — the same qualitative statement the paper makes for
small and mid p.
"""

from conftest import publish

from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner
from repro.experiments.variance import variance_rows


REPETITIONS = 5


def run_sweep(profile):
    runner = ExperimentRunner()
    return variance_rows(
        p_values=profile["p_values"],
        n_per_pe_values=profile["n_per_pe_values"],
        level_counts=(1, 2),
        repetitions=REPETITIONS,
        node_size=profile["node_size"],
        runner=runner,
    )


def test_fig12_variance(benchmark, profile):
    rows = benchmark.pedantic(run_sweep, args=(profile,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=(
            "Figure 12 (scaled reproduction) — distribution of AMS-sort modelled "
            f"wall-times over {REPETITIONS} repetitions (sampling noise only; the "
            "paper's network-interference component has no analogue in the simulator)"
        ),
    )
    publish("fig12_variance", text)

    for row in rows:
        assert row["runs"] == REPETITIONS
        assert row["min_s"] <= row["median_s"] <= row["max_s"]
        # sampling noise alone produces a moderate spread
        assert row["relative_spread"] < 1.0
