"""Benchmark: flat DistArray engine vs the seed per-PE path, p up to 2^15.

The flat engine (``repro.dist``) replaces the per-PE ``for i in range(p)``
loops of the seed implementation with whole-machine vectorised numpy; since
the full-lockstep recursion every level (not just the final one) runs as one
batch of segmented operations, which is what makes ``p = 2^15 = 32768`` —
the largest configuration evaluated in the paper — simulable.  The
benchmark, on AMS-sort with ``n/p = 1000``:

* runs the flat engine at ``p`` in {64, 256, 1024, 4096, 32768} (two-level
  plan up to 4096, the paper's three-level plan at 2^15),
* runs the seed per-PE reference at ``p`` up to 1024 and verifies the two
  engines produce **identical sorted output and modelled makespan**,
* at larger ``p`` (where the per-PE reference is infeasible) verifies
  **seeded determinism** instead: the flat engine runs twice with the same
  seed and must reproduce identical outputs and makespan,
* reports the wall-clock speedup (the acceptance bar is >= 5x at p=1024),
* records the process peak RSS per row (``peak_rss_mb``, a lifetime
  high-water mark — see :func:`_peak_rss_mb`; ``--rss-budget`` turns it
  into a hard memory assert for CI),
* archives the measurements as JSON (``BENCH_engine.json``).

Standalone usage (used by the CI perf smoke job)::

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py \
        --p-list 1024 --output BENCH_engine.json

``--profile`` additionally attributes the flat engine's wall time to the
paper's four phases (``SimulatedMachine.enable_wall_profile``) and stores
the attribution in each row — the trajectory future perf PRs regress
against.  Under pytest the module runs a reduced-scale version through the
pytest-benchmark harness like the other benchmarks in this directory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.config import AMSConfig
from repro.core.runner import distribute_array, run_on_machine
from repro.dist.array import DistArray
from repro.sim.machine import SimulatedMachine

DEFAULT_P_LIST = (64, 256, 1024, 4096, 32768)
N_PER_PE = 1000
LEVELS = 2  # the paper's default two-level plan


def _levels_for(p: int) -> int:
    """Recursion depth per machine size: the paper's Table 1 uses three
    levels for its largest (2^15 PE) configuration and two below that."""
    return 3 if p > 4096 else LEVELS


def _peak_rss_mb():
    """Process high-water RSS in MB (``ru_maxrss`` is KB on Linux).

    This is a *lifetime* high-water mark, so within one bench process the
    values are monotone non-decreasing across rows: a row's figure is the
    peak of everything run so far, dominated by the largest ``p`` yet.  The
    CI memory assert runs a single row per process, where the number is
    exactly that configuration's peak.
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _cores() -> int:
    """CPU cores this process may use (what the sharedmem backend sees)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_once(p: int, n_per_pe: int, engine: str, seed: int = 0,
              profile: bool = False, backend=None, levels=None):
    """One timed AMS-sort run; returns (wall, SortResult, phase_wall, backend_used)."""
    rng = np.random.default_rng(1)
    data = rng.integers(0, 2 ** 62, size=p * n_per_pe, dtype=np.int64)
    machine = SimulatedMachine(p, seed=seed)
    if engine == "flat":
        # The flat engine consumes the CSR layout natively; handing it the
        # flat buffer skips a p-way split + concatenate at the boundary.
        local = DistArray.from_sizes(data, np.full(p, n_per_pe, dtype=np.int64))
    else:
        local = distribute_array(data, p)
    if profile:
        machine.enable_wall_profile()
    t0 = time.perf_counter()
    result = run_on_machine(
        machine, local, algorithm="ams",
        config=AMSConfig(levels=levels if levels else _levels_for(p)),
        validate=False, engine=engine, backend=backend,
    )
    wall = time.perf_counter() - t0
    phase_wall = dict(machine.wall_profile) if profile else None
    return wall, result, phase_wall, machine.backend_used


def _best_of(p: int, n_per_pe: int, engine: str, repeats: int,
             profile: bool = False, backend=None, levels=None):
    """Best wall of ``repeats`` runs.

    Returns ``(wall, results, phase_wall, backend_used)`` where ``results``
    holds the first two runs' :class:`SortResult`\\ s — the second one is
    what the large-``p`` seeded-determinism check compares against, so the
    check costs no extra run.
    """
    walls = []
    results = []
    phase_wall = None
    backend_used = None
    for _ in range(max(1, repeats)):
        wall, result, pw, backend_used = _run_once(
            p, n_per_pe, engine, profile=profile, backend=backend,
            levels=levels,
        )
        if not walls or wall < min(walls):
            phase_wall = pw
        walls.append(wall)
        if len(results) < 2:
            results.append(result)
    return min(walls), results, phase_wall, backend_used


def run_comparison(
    p_list=DEFAULT_P_LIST,
    n_per_pe: int = N_PER_PE,
    reference_max: int = 1024,
    repeats: int = 3,
    profile: bool = False,
    backends=(None,),
    levels=None,
):
    """Run the flat/reference comparison; returns a list of row dicts.

    ``backends`` is a sequence of kernel-backend specs (``None`` = process
    default); each produces its own row per ``p``.  The per-PE reference
    runs once per ``p`` and every backend's flat output is checked against
    it, so the rows double as a cross-backend byte-identity check.
    ``levels`` overrides the per-``p`` recursion-depth policy when set.
    """
    rows = []
    cores = _cores()
    for p in p_list:
        compared = p <= reference_max
        ref_run = None  # the reference runs once per p, shared by all backends
        first_backend = None  # (name, SortResult) of the first backend's run
        for backend in backends:
            # Compared points use the same best-of-N on both engines;
            # flat-only points at large p run twice — the second same-seed
            # run doubles as the determinism check that replaces the per-PE
            # comparison there.
            flat_repeats = repeats if (compared or p <= 1024) else 2
            wall_flat, flat_results, phase_wall, backend_used = _best_of(
                p, n_per_pe, "flat", flat_repeats, profile=profile,
                backend=backend, levels=levels,
            )
            res_flat = flat_results[0]
            row_levels = levels if levels else _levels_for(p)
            row = {
                "p": int(p),
                "n_per_pe": int(n_per_pe),
                "levels": row_levels,
                "plan": [int(r) for r in AMSConfig(levels=row_levels).plan_for(p)],
                "backend": backend_used,
                "backend_spec": backend if backend is not None else "default",
                "cores": cores,
                "wall_flat_s": wall_flat,
                "peak_rss_mb": _peak_rss_mb(),
                "modelled_time_s": res_flat.total_time,
                "imbalance": res_flat.imbalance,
                "max_startups": res_flat.traffic.get("max_startups_per_pe", 0),
            }
            if profile and phase_wall is not None:
                row["phase_wall_s"] = phase_wall
            if compared:
                if ref_run is None:
                    ref_run = _best_of(
                        p, n_per_pe, "reference", repeats, levels=levels
                    )
                wall_ref, (res_ref, *_rest), _, _ = ref_run
                identical_output = all(
                    np.array_equal(a, b)
                    for a, b in zip(res_flat.output, res_ref.output)
                )
                identical_makespan = res_flat.total_time == res_ref.total_time
                row.update({
                    "wall_reference_s": wall_ref,
                    "speedup": wall_ref / wall_flat,
                    "identical_output": identical_output,
                    "identical_makespan": identical_makespan,
                })
                if not (identical_output and identical_makespan):
                    raise AssertionError(
                        f"flat ({backend_used}) and reference engines "
                        f"diverged at p={p}: "
                        f"output identical={identical_output}, "
                        f"makespan identical={identical_makespan}"
                    )
            else:
                # The per-PE reference is infeasible at this scale; pin
                # seeded determinism instead: same seed, same machine, run
                # twice — byte-identical outputs and identical modelled
                # makespan.  The second best-of run above doubles as the
                # re-run.
                res_again = flat_results[1]
                identical_output = all(
                    np.array_equal(a, b)
                    for a, b in zip(res_flat.output, res_again.output)
                )
                identical_makespan = res_flat.total_time == res_again.total_time
                row.update({
                    "identical_output": identical_output,
                    "identical_makespan": identical_makespan,
                    "determinism_check": "flat-rerun",
                })
                if not (identical_output and identical_makespan):
                    raise AssertionError(
                        f"flat engine ({backend_used}) is not "
                        f"seed-deterministic at p={p}: "
                        f"output identical={identical_output}, "
                        f"makespan identical={identical_makespan}"
                    )
            # Backends must be byte-identical to each other, not just
            # self-deterministic — pin the first backend's output as the
            # reference for the rest (this is the only cross-backend check
            # feasible at p where the per-PE reference cannot run).
            if first_backend is None:
                first_backend = (backend_used, res_flat)
            else:
                base_name, base_res = first_backend
                if not all(
                    np.array_equal(a, b)
                    for a, b in zip(base_res.output, res_flat.output)
                ) or base_res.total_time != res_flat.total_time:
                    raise AssertionError(
                        f"backends {base_name!r} and {backend_used!r} "
                        f"diverged at p={p}"
                    )
                row["identical_to_first_backend"] = True
            rows.append(row)
            msg = (
                f"p={p:5d}  n/p={n_per_pe}  backend={backend_used:9s}  "
                f"flat={row['wall_flat_s']:.3f}s"
            )
            if "speedup" in row:
                msg += (
                    f"  reference={row['wall_reference_s']:.3f}s"
                    f"  speedup={row['speedup']:.2f}x  identical=yes"
                )
            elif row.get("determinism_check"):
                msg += "  deterministic=yes"
            if row["peak_rss_mb"] is not None:
                msg += f"  rss={row['peak_rss_mb']:.0f}MB"
            msg += f"  modelled={row['modelled_time_s']:.5f}s"
            if profile and phase_wall is not None:
                top = sorted(phase_wall.items(), key=lambda kv: -kv[1])[:3]
                msg += "  wall[" + " ".join(
                    f"{k}={v:.2f}s" for k, v in top
                ) + "]"
            print(msg, flush=True)
    return rows


def write_json(rows, path: Path) -> None:
    """Write the measurement rows as a JSON document.

    The recursion depth is a *per-row* property (``levels`` and ``plan`` in
    each row — the paper's largest machine runs three levels while the rest
    run two), so the document deliberately carries no global level count.
    """
    doc = {
        "benchmark": "engine_scaling",
        "algorithm": "ams",
        "config": {"spec": "supermuc-like"},
        "rows": rows,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}", flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--p-list", type=int, nargs="+", default=list(DEFAULT_P_LIST),
                        help="simulated PE counts to run (default: 64 256 1024 4096)")
    parser.add_argument("--n-per-pe", type=int, default=N_PER_PE)
    parser.add_argument("--reference-max", type=int, default=1024,
                        help="largest p for which the per-PE seed path also runs")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of); p=4096 always runs once")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "results" / "BENCH_engine.json")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless the speedup at the largest compared p "
                             "reaches this factor (e.g. 5.0)")
    parser.add_argument("--backend", nargs="+", default=[None],
                        help="kernel backend specs to bench, one row each "
                             "('numpy', 'sharedmem', 'sharedmem:N'); "
                             "default: REPRO_BACKEND or numpy")
    parser.add_argument("--levels", type=int, default=None,
                        help="override the per-p recursion-depth policy "
                             "(default: 3 levels above p=4096, else 2)")
    parser.add_argument("--profile", action="store_true",
                        help="attribute flat-engine wall time to algorithm "
                             "phases and record it per row")
    parser.add_argument("--budget", type=float, default=None,
                        help="fail if any flat run exceeds this wall-clock "
                             "budget in seconds")
    parser.add_argument("--rss-budget", type=float, default=None,
                        help="fail if the process peak RSS exceeds this "
                             "budget in MB (ru_maxrss high-water)")
    args = parser.parse_args(argv)

    rows = run_comparison(
        p_list=args.p_list,
        n_per_pe=args.n_per_pe,
        reference_max=args.reference_max,
        repeats=args.repeats,
        profile=args.profile,
        backends=args.backend,
        levels=args.levels,
    )
    write_json(rows, args.output)

    if args.budget is not None:
        over = [r for r in rows if r["wall_flat_s"] > args.budget]
        if over:
            print(
                "FAIL: wall-clock budget exceeded: " + ", ".join(
                    f"p={r['p']} {r['wall_flat_s']:.2f}s > {args.budget:.0f}s"
                    for r in over
                ),
                file=sys.stderr,
            )
            return 1
        print(f"wall-clock budget check passed (<= {args.budget:.0f}s)")

    if args.rss_budget is not None:
        peak = _peak_rss_mb()
        if peak is None:
            print("ru_maxrss unavailable; cannot check RSS budget",
                  file=sys.stderr)
            return 2
        if peak > args.rss_budget:
            print(
                f"FAIL: peak RSS {peak:.0f}MB exceeds budget "
                f"{args.rss_budget:.0f}MB",
                file=sys.stderr,
            )
            return 1
        print(f"peak-RSS budget check passed: {peak:.0f}MB "
              f"<= {args.rss_budget:.0f}MB")

    if args.require_speedup is not None:
        compared = [r for r in rows if "speedup" in r]
        if not compared:
            print("no engine comparison ran; cannot check speedup", file=sys.stderr)
            return 2
        top = max(compared, key=lambda r: r["p"])
        if top["speedup"] < args.require_speedup:
            print(
                f"FAIL: speedup {top['speedup']:.2f}x at p={top['p']} below "
                f"required {args.require_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(f"speedup check passed: {top['speedup']:.2f}x at p={top['p']}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry point (reduced scale, like the other benchmarks)
# ----------------------------------------------------------------------
def test_engine_scaling(benchmark, profile):
    from conftest import publish

    p_values = profile["p_values"]
    rows = benchmark.pedantic(
        run_comparison,
        kwargs={
            "p_list": p_values,
            "n_per_pe": min(1000, max(profile["n_per_pe_values"])),
            # The per-PE seed path is impractical past ~1024 PEs; larger
            # profile points run the flat engine only.
            "reference_max": min(1024, max(p_values)),
            "repeats": 1,
        },
        rounds=1,
        iterations=1,
    )
    lines = ["Flat DistArray engine vs seed per-PE path (AMS-sort, 2 levels)"]
    for row in rows:
        lines.append(
            f"  p={row['p']:5d}  flat={row['wall_flat_s']:.3f}s  "
            f"reference={row.get('wall_reference_s', float('nan')):.3f}s  "
            f"speedup={row.get('speedup', float('nan')):.2f}x  "
            f"modelled={row['modelled_time_s']:.5f}s"
        )
    publish("engine_scaling", "\n".join(lines))

    # Identity is enforced inside run_comparison; at benchmark scale the
    # speedup must at least not regress below parity.
    assert all(row.get("identical_output", True) for row in rows)
    assert max(row.get("speedup", 1.0) for row in rows) >= 1.0


if __name__ == "__main__":
    raise SystemExit(main())
