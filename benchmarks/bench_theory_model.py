"""Benchmark: simulated cost versus the paper's closed-form analysis.

Not a table/figure of the paper per se, but the glue that justifies the
scaled reproduction: Theorem 2 (RLM-sort) and Theorem 3 (AMS-sort) predict
how the running time decomposes into local work, splitter handling and the
``Exch(p, n/p, O(k * p^(1/k)))`` exchanges.  This benchmark evaluates the
closed-form models and the simulator on the same configurations and checks
that they agree on the *ordering* of the algorithms and on the growth trend
with ``p``, which is the level of agreement the substitution (simulator for
SuperMUC) is supposed to preserve.
"""

from conftest import publish

from repro.analysis.tables import format_table
from repro.analysis.theory import (
    ams_sort_time_model,
    rlm_sort_time_model,
    single_level_sample_sort_time_model,
)
from repro.experiments.harness import ExperimentRunner, RunConfig
from repro.machine.spec import supermuc_like


def run_comparison(profile):
    runner = ExperimentRunner()
    spec = supermuc_like()
    n_per_pe = min(profile["n_per_pe_values"])
    rows = []
    for p in profile["p_values"]:
        n = n_per_pe * p
        measured_ams = runner.run(RunConfig(
            algorithm="ams", p=p, n_per_pe=n_per_pe, levels=2,
            node_size=profile["node_size"], repetitions=profile["repetitions"]))
        measured_single = runner.run(RunConfig(
            algorithm="samplesort", p=p, n_per_pe=n_per_pe, levels=1,
            node_size=profile["node_size"], repetitions=profile["repetitions"]))
        rows.append({
            "p": p,
            "n_per_pe": n_per_pe,
            "model_ams_s": ams_sort_time_model(spec, n, p, levels=2)["total"],
            "sim_ams_s": measured_ams["time_median_s"],
            "model_single_s": single_level_sample_sort_time_model(spec, n, p)["total"],
            "sim_single_s": measured_single["time_median_s"],
            "model_rlm_s": rlm_sort_time_model(spec, n, p, levels=2)["total"],
        })
    return rows


def test_theory_vs_simulation(benchmark, profile):
    rows = benchmark.pedantic(run_comparison, args=(profile,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=(
            "Analysis vs simulation — closed-form running-time models "
            "(Theorems 2/3) next to the simulated modelled times"
        ),
    )
    publish("theory_model", text)

    for row in rows:
        # model and simulation agree within an order of magnitude ...
        assert row["sim_ams_s"] < row["model_ams_s"] * 20
        assert row["model_ams_s"] < row["sim_ams_s"] * 20
    largest = rows[-1]
    # ... and on the key ordering at the largest simulated p: AMS-sort does
    # not lose to the dense single-level sample sort.
    assert largest["sim_ams_s"] <= largest["sim_single_s"] * 1.1
    assert largest["model_ams_s"] <= largest["model_single_s"] * 1.1
