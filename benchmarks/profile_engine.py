"""Per-phase wall-time profiler for the flat execution engine.

Answers "where does the *simulator* spend its wall time?" — not modelled PE
time — by running one algorithm configuration with the machine's wall-clock
phase profile enabled (``SimulatedMachine.enable_wall_profile``): every
phase transition attributes the elapsed host time to the innermost open
phase, so the run decomposes into the paper's four phases (splitter
selection / sampling, bucket processing / routing, data delivery, local
sorting) plus ``other`` (conversion, validation, bookkeeping outside any
phase).

This is the regression trajectory for engine-performance PRs: run it before
and after a change and compare the per-phase seconds, e.g. ::

    python benchmarks/profile_engine.py --p 32768 --levels 3
    python benchmarks/profile_engine.py --p 4096 --algorithm rlm --repeat 5

(``PYTHONPATH=src`` is optional: the script puts the in-repo ``src`` tree on
``sys.path`` itself.)  ``--repeat N`` reports the per-phase *median* over N
runs so before/after comparisons are stable against machine noise;
``--cprofile`` additionally dumps the top functions by internal time for
drilling into a phase.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import statistics
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.config import AMSConfig, RLMConfig
from repro.core.runner import run_on_machine
from repro.dist.array import DistArray
from repro.sim.machine import SimulatedMachine


def profile_run(
    p: int,
    n_per_pe: int = 1000,
    levels: int = 3,
    algorithm: str = "ams",
    seed: int = 0,
    engine: str = "flat",
    backend: str | None = None,
):
    """One profiled run; returns ``(wall_seconds, phase_wall, SortResult, machine)``."""
    rng = np.random.default_rng(1)
    data = rng.integers(0, 2 ** 62, size=p * n_per_pe, dtype=np.int64)
    dist = DistArray.from_sizes(data, np.full(p, n_per_pe, dtype=np.int64))
    machine = SimulatedMachine(p, seed=seed)
    machine.enable_wall_profile()
    if algorithm == "rlm":
        config = RLMConfig(levels=levels)
    else:
        config = AMSConfig(levels=levels)
    t0 = time.perf_counter()
    result = run_on_machine(
        machine, dist, algorithm=algorithm, config=config,
        validate=False, engine=engine, backend=backend,
    )
    wall = time.perf_counter() - t0
    return wall, dict(machine.wall_profile), result, machine


def format_profile(wall: float, phase_wall: dict) -> str:
    """Render the per-phase wall attribution as an aligned table."""
    attributed = sum(phase_wall.values())
    lines = []
    for phase, seconds in sorted(phase_wall.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"  {phase:22s} {seconds:8.2f} s  ({100 * seconds / max(wall, 1e-12):5.1f}%)"
        )
    lines.append(
        f"  {'(outside phases)':22s} {max(wall - attributed, 0.0):8.2f} s"
    )
    lines.append(f"  {'total wall':22s} {wall:8.2f} s")
    return "\n".join(lines)


def median_profile(walls, phase_walls):
    """Per-phase medians over repeated runs (phases missing in a run count 0)."""
    phases = sorted({ph for pw in phase_walls for ph in pw})
    return statistics.median(walls), {
        ph: statistics.median([pw.get(ph, 0.0) for pw in phase_walls])
        for ph in phases
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--p", type=int, default=4096, help="simulated PEs")
    parser.add_argument("--n-per-pe", type=int, default=1000)
    parser.add_argument("--levels", type=int, default=3)
    parser.add_argument("--algorithm", default="ams", choices=("ams", "rlm"))
    parser.add_argument("--engine", default="flat", choices=("flat", "reference"))
    parser.add_argument("--backend", default=None,
                        help="kernel backend spec ('numpy', 'sharedmem', "
                             "'sharedmem:N'); default: REPRO_BACKEND or numpy")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeat", type=int, default=1,
                        help="run N times and report the per-phase median "
                             "(stabilises before/after comparisons)")
    parser.add_argument("--cprofile", action="store_true",
                        help="also dump the top functions by internal time "
                             "(first run only)")
    parser.add_argument("--cprofile-limit", type=int, default=25)
    parser.add_argument("--json", type=Path, default=None,
                        help="append the profile as one JSON line to this file")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")

    # Resolve the backend to an instance up front so its per-kernel dispatch
    # counters (SharedMemBackend.stats()) can be read back after the runs —
    # get_backend caches named specs, so every run shares this instance.
    from repro.dist.backend import get_backend

    backend_obj = get_backend(args.backend)

    profiler = cProfile.Profile() if args.cprofile else None
    walls, phase_walls = [], []
    result = None
    for rep in range(args.repeat):
        if profiler is not None and rep == 0:
            profiler.enable()
        wall_i, phase_i, result, machine = profile_run(
            args.p, n_per_pe=args.n_per_pe, levels=args.levels,
            algorithm=args.algorithm, seed=args.seed, engine=args.engine,
            backend=backend_obj,
        )
        if profiler is not None and rep == 0:
            profiler.disable()
        walls.append(wall_i)
        phase_walls.append(phase_i)
    wall, phase_wall = median_profile(walls, phase_walls)

    label = "median of %d runs" % args.repeat if args.repeat > 1 else "1 run"
    print(
        f"{args.algorithm} p={args.p} n/p={args.n_per_pe} levels={args.levels} "
        f"engine={args.engine} backend={machine.backend_used}: "
        f"modelled={result.total_time:.5f}s ({label})"
    )
    print(format_profile(wall, phase_wall))

    if profiler is not None:
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats("tottime").print_stats(
            args.cprofile_limit
        )
        print(stream.getvalue())

    if args.json is not None:
        record = {
            "p": args.p,
            "n_per_pe": args.n_per_pe,
            "levels": args.levels,
            "algorithm": args.algorithm,
            "engine": args.engine,
            "backend": machine.backend_used,
            "repeat": args.repeat,
            "wall_s": wall,
            "phase_wall_s": phase_wall,
            "modelled_time_s": result.total_time,
            # Per-kernel sharded/inline dispatch counts, accumulated over
            # all repeats ({} for stateless backends like numpy).
            "backend_stats": backend_obj.stats(),
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        with args.json.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
        print(f"appended profile to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
