"""Benchmark / reproduction of Section 7.3: comparison with single-level codes.

The paper compares AMS-sort against MP-sort (a single-level multiway
mergesort), Solomonik & Kale's single-level hybrid and Baidu-Sort, and finds
that single-level codes fall behind by large factors for small ``n/p`` at
large ``p`` (MP-sort: two to three orders of magnitude at ``n/p = 1e5`` and
``p = 2^14``).  The scaled reproduction compares multi-level AMS-sort against
our re-implemented single-level baselines and checks the structural claim:
the single-level slowdown grows with ``p``.
"""

from conftest import publish

from repro.analysis.tables import format_table
from repro.experiments.comparison import comparison_rows
from repro.experiments.harness import ExperimentRunner


def run_sweep(profile):
    runner = ExperimentRunner()
    return comparison_rows(
        p_values=profile["p_values"],
        n_per_pe=min(profile["n_per_pe_values"]),
        baselines=("mergesort", "samplesort", "quicksort"),
        node_size=profile["node_size"],
        repetitions=profile["repetitions"],
        runner=runner,
    )


def test_sec73_single_level_comparison(benchmark, profile):
    rows = benchmark.pedantic(run_sweep, args=(profile,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=(
            "Section 7.3 (scaled reproduction) — AMS-sort (best level) vs "
            "single-level baselines at small n/p "
            "(paper: MP-sort is orders of magnitude slower at p = 2^14)"
        ),
    )
    publish("sec73_single_level", text)

    p_values = sorted({row["p"] for row in rows})
    largest_p = p_values[-1]

    def slowdown_of(algo, p):
        return [row["slowdown_vs_ams"] for row in rows
                if row["algorithm"] == algo and row["p"] == p][0]

    # At the largest p, the MP-sort-style single-level mergesort is clearly
    # slower than AMS-sort (the paper's headline comparison), and its
    # disadvantage does not shrink as p grows.
    assert slowdown_of("mergesort", largest_p) > 1.0
    if len(p_values) >= 2:
        assert slowdown_of("mergesort", largest_p) >= 0.8 * slowdown_of("mergesort", p_values[0])
    # At least one further single-level baseline also loses at the largest p
    # (at paper scale all of them do; at the reduced benchmark scale the
    # quicksort's log-p data movement penalty is still small).
    others = [slowdown_of(algo, largest_p) for algo in ("samplesort", "quicksort")]
    assert max(others) > 1.0
    # Every baseline result is present for every p.
    assert len(rows) == len(p_values) * 4
