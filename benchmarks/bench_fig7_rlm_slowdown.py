"""Benchmark / reproduction of Figure 7: slowdown of RLM-sort vs AMS-sort.

The paper observes that RLM-sort (best level choice) is slower than AMS-sort
(best level choice) in almost all configurations, with the gap widening for
small ``n/p`` and large ``p``.  The scaled reproduction checks the same
ordering and reports the slowdown series.
"""

from conftest import publish

from repro.analysis.tables import format_table
from repro.experiments.harness import ExperimentRunner
from repro.experiments.slowdown import slowdown_rows


def run_sweep(profile):
    runner = ExperimentRunner()
    return slowdown_rows(
        p_values=profile["p_values"],
        n_per_pe_values=profile["n_per_pe_values"],
        level_counts=(1, 2),
        repetitions=profile["repetitions"],
        node_size=profile["node_size"],
        runner=runner,
    )


def test_fig7_rlm_slowdown(benchmark, profile):
    rows = benchmark.pedantic(run_sweep, args=(profile,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=(
            "Figure 7 (scaled reproduction) — slowdown of RLM-sort vs AMS-sort "
            "(paper: slowdown > 1 almost everywhere, up to ~4 for small n/p at large p)"
        ),
    )
    publish("fig7_rlm_slowdown", text)

    # RLM-sort should essentially never be faster than AMS-sort by more than a
    # small margin, and for the smallest n/p it should be clearly slower.
    assert all(row["slowdown"] > 0.8 for row in rows)
    smallest_n = min(row["n_per_pe"] for row in rows)
    largest_p = max(row["p"] for row in rows)
    worst_case = [row for row in rows
                  if row["n_per_pe"] == smallest_n and row["p"] == largest_p]
    assert worst_case and worst_case[0]["slowdown"] > 1.0
