#!/usr/bin/env python3
"""Load balancing with space-filling curves — the paper's motivating application.

The introduction of the paper motivates massively parallel sorting with load
balancing in supercomputer simulations: particles (or mesh cells) are ordered
along a space-filling curve and the curve is cut into ``p`` equal pieces, one
per PE, so that every PE gets the same amount of work and spatially close
particles end up on the same PE.  "Note that in this case most of the work is
done for the application and the inputs are relatively small" — exactly the
small-``n/p`` regime where multi-level algorithms shine.

This example

1. creates a clustered 3-D particle distribution (a few Plummer-like blobs),
2. computes Morton (Z-order) keys for all particles,
3. sorts the keys with 2-level AMS-sort on a simulated 64-PE machine,
4. reports the work balance before and after, and the spatial locality of
   the resulting partition (bounding-box volume per PE).

Run with::

    python examples/spacefilling_loadbalance.py
"""

import numpy as np

from repro import AMSConfig, SimulatedMachine, run_on_machine
from repro.core.runner import distribute_array
from repro.workloads.morton import particle_morton_keys


def make_clustered_particles(n: int, clusters: int, rng: np.random.Generator) -> np.ndarray:
    """A clustered particle distribution (far from uniform, as in real simulations)."""
    centers = rng.random((clusters, 3))
    sizes = rng.multinomial(n, np.ones(clusters) / clusters)
    points = []
    for center, m in zip(centers, sizes):
        points.append(center + rng.normal(scale=0.03, size=(m, 3)))
    positions = np.clip(np.vstack(points), 0.0, 1.0)
    return positions


def partition_quality(keys_sorted_per_pe, keys, positions):
    """Bounding-box volume of each PE's particles after the curve partition."""
    order = np.argsort(keys, kind="stable")
    sorted_positions = positions[order]
    volumes = []
    offset = 0
    for piece in keys_sorted_per_pe:
        m = piece.size
        if m == 0:
            volumes.append(0.0)
            continue
        chunk = sorted_positions[offset:offset + m]
        extent = chunk.max(axis=0) - chunk.min(axis=0)
        volumes.append(float(np.prod(extent)))
        offset += m
    return np.asarray(volumes)


def main() -> None:
    rng = np.random.default_rng(7)
    n, p = 400_000, 64
    positions = make_clustered_particles(n, clusters=8, rng=rng)
    print(f"{n:,} clustered particles, {p} simulated PEs")
    print("=" * 72)

    # Initial (naive, spatial-slab) distribution: slice the domain along x.
    slab_of_particle = np.minimum((positions[:, 0] * p).astype(int), p - 1)
    slab_counts = np.bincount(slab_of_particle, minlength=p)
    print("Naive spatial slabs (split the x-axis evenly):")
    print(f"  heaviest PE: {slab_counts.max():,} particles, "
          f"lightest PE: {slab_counts.min():,} "
          f"(imbalance {slab_counts.max() / (n / p) - 1:.2f})")

    # Space-filling-curve load balancing = sort Morton keys with AMS-sort.
    keys = particle_morton_keys(positions, bits=15, bounds=(0.0, 1.0))
    machine = SimulatedMachine(p, seed=1)
    local_keys = distribute_array(keys, p)
    result = run_on_machine(machine, local_keys, algorithm="ams",
                            config=AMSConfig(levels=2))
    curve_counts = np.array([o.size for o in result.output])
    volumes = partition_quality(result.output, keys, positions)

    print()
    print("Space-filling-curve partition (2-level AMS-sort on Morton keys):")
    print(f"  heaviest PE: {curve_counts.max():,} particles, "
          f"lightest PE: {curve_counts.min():,} "
          f"(imbalance {curve_counts.max() / (n / p) - 1:.2f})")
    print(f"  modelled sorting time: {result.total_time * 1e3:.3f} ms "
          f"on the simulated machine")
    print(f"  median bounding-box volume per PE: {np.median(volumes):.5f} "
          f"(full domain = 1.0; small boxes = good spatial locality)")
    print()
    print("Phase breakdown of the sort (the application's 'overhead' budget):")
    for phase, t in sorted(result.phase_times.items()):
        print(f"  {phase:<20s} {t * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
