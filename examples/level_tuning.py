#!/usr/bin/env python3
"""Level tuning and delivery-strategy ablation on a hierarchical machine.

The central tuning knob of the multi-level algorithms is the number of
recursion levels ``k`` (Section 5/6, Table 1): more levels mean fewer message
startups (``O(k * p^(1/k))``) but the data is moved ``k`` times.  This example
sweeps ``k`` in {1, 2, 3} for AMS-sort on a simulated SuperMUC-like machine
at two per-PE volumes and prints the per-phase breakdown, reproducing the
qualitative picture of Figure 8 on a laptop.  It also compares the four data
delivery strategies of Section 4.3 / Appendix A on an adversarial input.

Run with::

    python examples/level_tuning.py
"""

import numpy as np

from repro import AMSConfig, SimulatedMachine, run_on_machine
from repro.core.config import level_plan
from repro.machine.counters import PAPER_PHASES
from repro.workloads.generators import per_pe_workload, tiny_pieces_worst_case


P = 256
NODE_SIZE = 16


def level_sweep(n_per_pe: int) -> None:
    print(f"--- AMS-sort level sweep, p={P}, n/p={n_per_pe:,} "
          f"(machine: supermuc-like, {NODE_SIZE} PEs per node) ---")
    data = per_pe_workload("uniform", P, n_per_pe, seed=11)
    header = f"{'k':>2} {'plan':<16} {'time[ms]':>10} {'startups':>9} " + \
             "".join(f"{ph[:12]:>14}" for ph in PAPER_PHASES)
    print(header)
    for levels in (1, 2, 3):
        machine = SimulatedMachine(P, seed=11)
        result = run_on_machine(machine, data, algorithm="ams",
                                config=AMSConfig(levels=levels, node_size=NODE_SIZE))
        plan = level_plan(P, levels, node_size=NODE_SIZE)
        phases = "".join(
            f"{result.phase_times.get(ph, 0.0) * 1e3:14.3f}" for ph in PAPER_PHASES
        )
        print(f"{levels:>2} {str(plan):<16} {result.total_time * 1e3:10.3f} "
              f"{result.traffic['max_startups_per_pe']:9d}{phases}")
    print()


def delivery_ablation() -> None:
    print(f"--- data delivery strategies on the adversarial tiny-pieces input "
          f"(Section 4.3), p={P} ---")
    data = tiny_pieces_worst_case(p=P, r=16, n_per_pe=2000, seed=3)
    print(f"{'delivery':<15} {'time[ms]':>10} {'max recv msgs':>14} {'max sent msgs':>14}")
    for method in ("naive", "randomized", "deterministic", "advanced"):
        machine = SimulatedMachine(P, seed=3)
        result = run_on_machine(
            machine, data, algorithm="ams",
            config=AMSConfig(levels=2, node_size=NODE_SIZE, delivery=method),
        )
        recv = int(machine.counters.messages_received.max())
        sent = int(machine.counters.messages_sent.max())
        print(f"{method:<15} {result.total_time * 1e3:10.3f} {recv:>14d} {sent:>14d}")
    print()


def main() -> None:
    print("Level tuning for AMS-sort (reproduces the qualitative shape of Figure 8)")
    print("=" * 78)
    # Small per-PE volume: startups matter, multi-level pays off.
    level_sweep(1_000)
    # Larger per-PE volume: local sorting and bandwidth dominate, fewer levels win.
    level_sweep(20_000)
    delivery_ablation()
    print("Interpretation: with only 1,000 elements per PE the 2- and 3-level")
    print("configurations beat the single level because they cut the number of")
    print("message startups; with 20,000 elements per PE the extra data movement")
    print("of additional levels is no longer free — exactly the trade-off the")
    print("paper describes.")


if __name__ == "__main__":
    main()
