#!/usr/bin/env python3
"""Quickstart: sort a distributed array with AMS-sort on a simulated machine.

Run with::

    python examples/quickstart.py

The script sorts one million uniformly random 64-bit keys on a simulated
64-PE machine with the paper's 2-level AMS-sort configuration, verifies the
output, and prints the phase breakdown (splitter selection, bucket
processing, data delivery, local sorting) and the communication statistics
that the paper's evaluation is about.
"""

import numpy as np

from repro import AMSConfig, RLMConfig, sort_array
from repro.machine.counters import PAPER_PHASES


def main() -> None:
    rng = np.random.default_rng(42)
    n = 1_000_000
    p = 64
    data = rng.integers(0, 2**62, size=n, dtype=np.int64)

    print(f"Sorting {n:,} random 64-bit keys on a simulated machine with {p} PEs")
    print("=" * 72)

    # --- AMS-sort, 2 levels (the paper's flagship configuration) ----------
    result = sort_array(data, p=p, algorithm="ams", config=AMSConfig(levels=2))
    output = np.concatenate(result.output)
    assert np.array_equal(output, np.sort(data)), "output mismatch!"

    print("AMS-sort (2 levels)")
    print(f"  modelled wall-time : {result.total_time * 1e3:9.3f} ms")
    print(f"  output imbalance   : {result.imbalance:9.4f}  (paper bound: (1+eps))")
    print(f"  max startups / PE  : {result.traffic['max_startups_per_pe']:9d}")
    print(f"  max words / PE     : {result.traffic['max_words_per_pe']:9d}")
    print("  phase breakdown (bottleneck time per phase, summed over levels):")
    for phase in PAPER_PHASES:
        t = result.phase_times.get(phase, 0.0)
        print(f"    {phase:<20s} {t * 1e3:9.3f} ms  ({100 * result.phase_fraction(phase):5.1f} %)")

    # --- RLM-sort for comparison ------------------------------------------
    rlm = sort_array(data, p=p, algorithm="rlm", config=RLMConfig(levels=2))
    print()
    print("RLM-sort (2 levels), perfectly balanced output")
    print(f"  modelled wall-time : {rlm.total_time * 1e3:9.3f} ms")
    print(f"  output imbalance   : {rlm.imbalance:9.4f}")
    print(f"  slowdown vs AMS    : {rlm.total_time / result.total_time:9.2f}x "
          "(Figure 7 of the paper)")

    # --- a single-level baseline ------------------------------------------
    single = sort_array(data, p=p, algorithm="samplesort")
    print()
    print("Classic single-level sample sort (centralized splitters, dense all-to-all)")
    print(f"  modelled wall-time : {single.total_time * 1e3:9.3f} ms")
    print(f"  max startups / PE  : {single.traffic['max_startups_per_pe']:9d} "
          f"(vs {result.traffic['max_startups_per_pe']} for 2-level AMS-sort)")


if __name__ == "__main__":
    main()
