#!/usr/bin/env python3
"""Sort-benchmark style records (the Minute-Sort comparison of Section 7.3).

The paper compares AMS-sort against Baidu-Sort, the 2014 Minute-Sort winner,
which sorts 100-byte records with 10-byte random keys.  This example runs the
same workload shape on the simulator:

1. generate 100-byte records with random 10-byte keys,
2. pack the key prefix into a 64-bit machine word (the representation the
   distributed algorithms sort),
3. sort the keys with 2-level AMS-sort and with the classic single-level
   sample sort on a simulated 64-PE machine,
4. permute the full records into sorted order locally and verify,
5. report modelled sort time, communication statistics and the derived
   "records per second per PE" figure of merit.

Run with::

    python examples/minute_sort_records.py
"""

import numpy as np

from repro import AMSConfig, SimulatedMachine, run_on_machine
from repro.workloads.records import (
    generate_records,
    key_to_bytes,
    pack_key_bytes,
    record_keys,
    split_records,
)


def main() -> None:
    n_records = 200_000
    p = 64
    print(f"Minute-Sort style workload: {n_records:,} records x 100 bytes, {p} simulated PEs")
    print("=" * 72)

    records = generate_records(n_records, rng=2024)
    per_pe_records, per_pe_keys = split_records(records, p)

    results = {}
    for name, algorithm, config in [
        ("AMS-sort (2 levels)", "ams", AMSConfig(levels=2)),
        ("single-level sample sort", "samplesort", None),
    ]:
        machine = SimulatedMachine(p, seed=3)
        result = run_on_machine(machine, per_pe_keys, algorithm=algorithm, config=config)
        results[name] = result

        sorted_keys = np.concatenate(result.output)
        assert np.array_equal(sorted_keys, np.sort(record_keys(records)))

        # Derived figure of merit: sorted records per second per PE
        # (modelled machine time; 100-byte records).
        rate = n_records / result.total_time / p
        print(f"{name}")
        print(f"  modelled wall-time     : {result.total_time * 1e3:9.3f} ms")
        print(f"  records / s / PE       : {rate:12,.0f}")
        print(f"  max startups per PE    : {result.traffic['max_startups_per_pe']:9d}")
        print(f"  bottleneck volume / PE : {result.traffic['max_words_per_pe']:9d} words")
        print()

    # Reconstruct the globally sorted record array from the key order (what a
    # full record sort would ship; here done centrally for verification).
    all_keys = record_keys(records)
    sorted_records = records[np.argsort(all_keys, kind="stable")]
    # numpy sorts and compares S fields over the full padded buffer, so the
    # multiset check below is NUL-safe as long as it stays inside numpy —
    # only *Python-level* element access strips trailing NULs (use
    # key_to_bytes for lossless extraction).  Check all keys, not a prefix.
    assert np.array_equal(np.sort(sorted_records["key"]), np.sort(records["key"]))
    # And the permuted records really are ordered by what was sorted — the
    # packed 8-byte prefix (NUL bytes included; key_to_bytes shows them):
    packed = pack_key_bytes(sorted_records["key"])
    assert np.all(packed[1:] >= packed[:-1])
    assert key_to_bytes(sorted_records["key"]).shape == (n_records, 10)
    print("record payloads permuted into key order and verified (NUL-safe)")

    ams_t = results["AMS-sort (2 levels)"].total_time
    single_t = results["single-level sample sort"].total_time
    print(f"\nAMS-sort vs single-level sample sort: {single_t / ams_t:.2f}x "
          "(the gap grows with p; see benchmarks/bench_sec73_single_level.py)")


if __name__ == "__main__":
    main()
